//! Before/after benchmark for the compiled-plan evaluation hot path.
//!
//! Runs the fig08 forwarding workload and the DNS workload twice each —
//! once through the naive AST interpreter (`compiled_plans = false`, the
//! pre-optimization engine) and once through compiled rule plans with
//! secondary-index joins — and reports wall-clock times, speedups and
//! index telemetry as one JSON document (checked in as `BENCH_pr3.json`).
//!
//! Usage: `bench_pr3 [--smoke] [--iters N] [--out PATH]`
//!
//! `--smoke` shrinks the workloads for CI; the checked-in numbers come
//! from the default scale.

use dpc_bench::{run_dns, run_forwarding, DnsConfig, FwdConfig, RunMeasurements, Scheme};
use dpc_netsim::SimTime;
use dpc_telemetry::json::Json;

struct Args {
    smoke: bool,
    iters: usize,
    out: String,
    scheme: Scheme,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        iters: 3,
        out: "BENCH_pr3.json".into(),
        scheme: Scheme::Exspan,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.iters = 1;
            }
            "--iters" => {
                args.iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--scheme" => {
                args.scheme = match it.next().as_deref() {
                    Some("noop") => Scheme::Noop,
                    Some("exspan") => Scheme::Exspan,
                    Some("basic") => Scheme::Basic,
                    Some("advanced") => Scheme::Advanced,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_pr3 [--smoke] [--iters N] [--out PATH] [--scheme noop|exspan|basic|advanced]"
    );
    std::process::exit(2);
}

/// Best-of-`iters` event-processing seconds for `f` (each call returns
/// the run's drive-phase wall clock), plus the measurements of the final
/// run.
fn time_best(
    iters: usize,
    mut f: impl FnMut() -> (f64, RunMeasurements),
) -> (f64, RunMeasurements) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let (secs, m) = f();
        best = best.min(secs);
        last = Some(m);
    }
    (best, last.expect("iters >= 1"))
}

fn workload_record(
    name: &str,
    scheme: Scheme,
    iters: usize,
    run: impl Fn(bool) -> (f64, RunMeasurements),
) -> Json {
    eprintln!("{name}: naive interpreter ({iters} iters)...");
    let (before, _) = time_best(iters, || run(false));
    eprintln!("{name}: compiled plans ({iters} iters)...");
    let (after, m) = time_best(iters, || run(true));
    let (hits, misses) = m.index_hits_misses();
    let speedup = before / after;
    eprintln!("{name}: {before:.3}s -> {after:.3}s ({speedup:.2}x)");
    Json::obj([
        ("name", Json::Str(name.into())),
        ("scheme", Json::Str(scheme.name().into())),
        ("rules_fired", Json::UInt(m.rules_fired)),
        ("before_secs", Json::Float(before)),
        ("after_secs", Json::Float(after)),
        ("speedup", Json::Float(speedup)),
        ("index_hits", Json::UInt(hits)),
        ("index_misses", Json::UInt(misses)),
        ("plans_compiled", Json::UInt(m.plans_compiled())),
    ])
}

fn main() {
    let args = parse_args();
    let scheme = args.scheme;

    let fwd = if args.smoke {
        FwdConfig {
            pairs: 10,
            rate_per_pair: 2.5,
            duration: SimTime::from_secs(2),
            ..FwdConfig::default()
        }
    } else {
        // A 972-node transit-stub (the paper's shape, scaled up) with 3600
        // communicating pairs: per-node route tables reach several hundred
        // rows, the size regime the index work targets.
        FwdConfig {
            pairs: 3600,
            rate_per_pair: 0.5,
            duration: SimTime::from_secs(10),
            topo: dpc_netsim::topo::TransitStubParams {
                transit_nodes: 12,
                stub_domains_per_transit: 5,
                stub_nodes_per_domain: 16,
                ..Default::default()
            },
            ..FwdConfig::default()
        }
    };
    let dns = if args.smoke {
        DnsConfig {
            servers: 30,
            urls: 10,
            rate: 50.0,
            duration: SimTime::from_secs(2),
            ..DnsConfig::default()
        }
    } else {
        // 12000 URLs over 100 servers: each nameserver hosts ~120 address
        // records, so the naive interpreter scans ~120 rows per `request`
        // hop where the compiled plan probes the (loc, url) index.
        DnsConfig {
            urls: 12000,
            rate: 500.0,
            duration: SimTime::from_secs(10),
            ..DnsConfig::default()
        }
    };

    let workloads = vec![
        workload_record("fig08_forwarding", scheme, args.iters, |compiled| {
            let cfg = FwdConfig {
                compiled_plans: compiled,
                ..fwd.clone()
            };
            let out = run_forwarding(scheme, &cfg);
            (out.processing_secs, out.m)
        }),
        workload_record("dns_resolution", scheme, args.iters, |compiled| {
            let cfg = DnsConfig {
                compiled_plans: compiled,
                ..dns.clone()
            };
            let out = run_dns(scheme, &cfg);
            (out.processing_secs, out.m)
        }),
    ];

    let doc = Json::obj([
        ("record", Json::Str("bench_pr3".into())),
        ("smoke", Json::Bool(args.smoke)),
        ("iters", Json::UInt(args.iters as u64)),
        ("workloads", Json::Arr(workloads)),
    ]);
    let text = format!("{doc}\n");
    std::fs::write(&args.out, &text).expect("write output file");
    print!("{text}");
}
