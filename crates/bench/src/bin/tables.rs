//! Tables 1-4: the paper's worked storage examples, regenerated on the
//! Figure 2 deployment (paper nodes n1,n2,n3 are our n0,n1,n2).

use dpc_apps::forwarding;
use dpc_bench::Cli;
use dpc_common::NodeId;
use dpc_core::dump::{dump_advanced, dump_basic, dump_exspan};
use dpc_core::{AdvancedRecorder, BasicRecorder, ExspanRecorder};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::{equivalence_keys, programs};
use dpc_netsim::{topo, Link};
use dpc_telemetry::json::Json;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// One JSON-lines record per table: per-node row counts and storage.
fn table_json<R: ProvRecorder>(
    table: u64,
    scheme: &str,
    rt: &Runtime<R>,
    rows: impl Fn(NodeId) -> (usize, usize),
) -> Json {
    let per_node = rt
        .net()
        .nodes()
        .map(|nd| {
            let (prov, rule_exec) = rows(nd);
            Json::obj([
                ("node", Json::UInt(nd.0 as u64)),
                ("prov_rows", Json::UInt(prov as u64)),
                ("rule_exec_rows", Json::UInt(rule_exec as u64)),
                (
                    "storage_bytes",
                    Json::UInt(rt.recorder().storage_at(nd) as u64),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("record", Json::Str("table".into())),
        ("table", Json::UInt(table)),
        ("scheme", Json::Str(scheme.into())),
        ("per_node", Json::Arr(per_node)),
    ])
}

fn deploy<R: ProvRecorder>(rec: R) -> Runtime<R> {
    let net = topo::line(3, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, rec);
    rt.install(forwarding::route(n(0), n(2), n(1)))
        .expect("install");
    rt.install(forwarding::route(n(1), n(2), n(2)))
        .expect("install");
    rt
}

fn main() {
    let cli = Cli::parse();

    // Table 1: ExSPAN, one packet (Figure 3's tree).
    let mut rt = deploy(ExspanRecorder::new(3));
    rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
        .expect("inject");
    rt.run().expect("run");
    if cli.json {
        println!(
            "{}",
            table_json(1, "ExSPAN", &rt, |nd| rt.recorder().row_counts(nd))
        );
    } else {
        println!("# Table 1 — ExSPAN tables for Figure 3's provenance tree");
        println!("{}", dump_exspan(rt.recorder(), rt.net().nodes()));
    }

    // Table 2: Basic, same packet (Figure 4's optimized tree).
    let mut rt = deploy(BasicRecorder::new(3));
    rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
        .expect("inject");
    rt.run().expect("run");
    if cli.json {
        println!(
            "{}",
            table_json(2, "Basic", &rt, |nd| rt.recorder().row_counts(nd))
        );
    } else {
        println!("# Table 2 — Basic (optimized) tables for Figure 4");
        println!("{}", dump_basic(rt.recorder(), rt.net().nodes()));
    }

    // Table 3: Advanced, the two packets of Figure 6.
    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut rt = deploy(AdvancedRecorder::new(3, keys.clone()));
    rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
        .expect("inject");
    rt.inject(forwarding::packet(n(0), n(0), n(2), "url"))
        .expect("inject");
    rt.run().expect("run");
    if cli.json {
        println!(
            "{}",
            table_json(3, "Advanced", &rt, |nd| rt.recorder().row_counts(nd))
        );
    } else {
        println!("# Table 3 — Advanced (compressed) tables for Figure 6's two packets");
        println!("{}", dump_advanced(rt.recorder(), rt.net().nodes()));
    }

    // Table 4: the inter-class split after Section 5.4's extra packet
    // entering mid-path at n1.
    let mut rt = deploy(AdvancedRecorder::with_inter_class(3, keys));
    rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
        .expect("inject");
    rt.run().expect("run");
    rt.inject(forwarding::packet(n(1), n(1), n(2), "ack"))
        .expect("inject");
    rt.run().expect("run");
    if cli.json {
        let per_node = (0..3u32)
            .map(|i| {
                let (prov, rule_exec) = rt.recorder().row_counts(n(i));
                Json::obj([
                    ("node", Json::UInt(i as u64)),
                    ("prov_rows", Json::UInt(prov as u64)),
                    ("rule_exec_link_rows", Json::UInt(rule_exec as u64)),
                    (
                        "rule_exec_node_rows",
                        Json::UInt(rt.recorder().node_row_count(n(i)) as u64),
                    ),
                    (
                        "storage_bytes",
                        Json::UInt(rt.recorder().storage_at(n(i)) as u64),
                    ),
                ])
            })
            .collect();
        let line = Json::obj([
            ("record", Json::Str("table".into())),
            ("table", Json::UInt(4)),
            ("scheme", Json::Str("Advanced+InterClass".into())),
            ("per_node", Json::Arr(per_node)),
        ]);
        println!("{line}");
    } else {
        println!("# Table 4 — ruleExecNode/ruleExecLink split (Section 5.4)");
        for i in 0..3u32 {
            println!(
                "n{i}: {} shared ruleExecNode rows, {} per-tree ruleExecLink rows, {} prov rows",
                rt.recorder().node_row_count(n(i)),
                rt.recorder().row_counts(n(i)).1,
                rt.recorder().row_counts(n(i)).0,
            );
        }
    }
}
