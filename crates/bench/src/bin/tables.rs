//! Tables 1-4: the paper's worked storage examples, regenerated on the
//! Figure 2 deployment (paper nodes n1,n2,n3 are our n0,n1,n2).

use dpc_apps::forwarding;
use dpc_common::NodeId;
use dpc_core::dump::{dump_advanced, dump_basic, dump_exspan};
use dpc_core::{AdvancedRecorder, BasicRecorder, ExspanRecorder};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::{equivalence_keys, programs};
use dpc_netsim::{topo, Link};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn deploy<R: ProvRecorder>(rec: R) -> Runtime<R> {
    let net = topo::line(3, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, rec);
    rt.install(forwarding::route(n(0), n(2), n(1)))
        .expect("install");
    rt.install(forwarding::route(n(1), n(2), n(2)))
        .expect("install");
    rt
}

fn main() {
    // Table 1: ExSPAN, one packet (Figure 3's tree).
    let mut rt = deploy(ExspanRecorder::new(3));
    rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
        .expect("inject");
    rt.run().expect("run");
    println!("# Table 1 — ExSPAN tables for Figure 3's provenance tree");
    println!("{}", dump_exspan(rt.recorder(), rt.net().nodes()));

    // Table 2: Basic, same packet (Figure 4's optimized tree).
    let mut rt = deploy(BasicRecorder::new(3));
    rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
        .expect("inject");
    rt.run().expect("run");
    println!("# Table 2 — Basic (optimized) tables for Figure 4");
    println!("{}", dump_basic(rt.recorder(), rt.net().nodes()));

    // Table 3: Advanced, the two packets of Figure 6.
    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut rt = deploy(AdvancedRecorder::new(3, keys.clone()));
    rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
        .expect("inject");
    rt.inject(forwarding::packet(n(0), n(0), n(2), "url"))
        .expect("inject");
    rt.run().expect("run");
    println!("# Table 3 — Advanced (compressed) tables for Figure 6's two packets");
    println!("{}", dump_advanced(rt.recorder(), rt.net().nodes()));

    // Table 4: the inter-class split after Section 5.4's extra packet
    // entering mid-path at n1.
    let mut rt = deploy(AdvancedRecorder::with_inter_class(3, keys));
    rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
        .expect("inject");
    rt.run().expect("run");
    rt.inject(forwarding::packet(n(1), n(1), n(2), "ack"))
        .expect("inject");
    rt.run().expect("run");
    println!("# Table 4 — ruleExecNode/ruleExecLink split (Section 5.4)");
    for i in 0..3u32 {
        println!(
            "n{i}: {} shared ruleExecNode rows, {} per-tree ruleExecLink rows, {} prov rows",
            rt.recorder().node_row_count(n(i)),
            rt.recorder().row_counts(n(i)).1,
            rt.recorder().row_counts(n(i)).0,
        );
    }
}
