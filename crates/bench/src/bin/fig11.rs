//! Figure 11: bandwidth consumption during packet forwarding (500 pairs,
//! 100 packets each in the paper), plus the Section 5.5 route-update
//! variant.
//!
//! Paper result: all three schemes consume nearly identical bandwidth —
//! the per-packet metadata is negligible next to 500-byte payloads — and
//! updating a route every 10 s adds only ~0.6%.

use dpc_bench::{
    emit_run_json, emit_run_json_with, emit_timeseries_json, print_series, print_table,
    run_forwarding, Cli, FwdConfig, Scheme,
};
use dpc_netsim::SimTime;
use dpc_telemetry::json::Json;

fn main() {
    let cli = Cli::parse();
    let (pairs, per_pair, duration) = if cli.paper_scale {
        (500, 100, SimTime::from_secs(100))
    } else {
        (50, 20, SimTime::from_secs(10))
    };
    let base = FwdConfig {
        seed: cli.seed,
        pairs,
        total_packets: Some(pairs * per_pair),
        duration,
        ..FwdConfig::default()
    };
    if !cli.json {
        println!("Figure 11 — bandwidth during forwarding ({pairs} pairs x {per_pair} packets)");
    }

    let mut xs: Vec<f64> = Vec::new();
    let mut series = Vec::new();
    let mut totals = Vec::new();
    for scheme in Scheme::PAPER {
        let out = run_forwarding(scheme, &base);
        if cli.json {
            emit_run_json("fig11", scheme.name(), &out.m);
            if cli.timeseries {
                emit_timeseries_json(&out.m);
            }
        }
        // Bandwidth-over-time from the sampler's cumulative
        // `net.bytes_total` series, differentiated between stamps.
        let rate = out.m.bandwidth_rate_series();
        if xs.is_empty() {
            xs = rate.iter().map(|&(s, _)| s).collect();
        }
        let ys: Vec<f64> = rate.iter().map(|&(_, b)| b / 1_000_000.0).collect();
        totals.push((scheme, out.m.total_traffic));
        series.push((scheme.name(), ys));
    }
    if !cli.json {
        print_series("bandwidth", "second", "MB/s", &xs, &series);
    }

    // The slow-table update variant (Advanced only, as in the paper).
    let with_updates = FwdConfig {
        route_update_every: Some(if cli.paper_scale {
            SimTime::from_secs(10)
        } else {
            SimTime::from_secs(2)
        }),
        ..base
    };
    let upd = run_forwarding(Scheme::Advanced, &with_updates);
    if cli.json {
        emit_run_json_with(
            "fig11",
            Scheme::Advanced.name(),
            vec![("route_updates", Json::Bool(true))],
            &upd.m,
        );
        if cli.timeseries {
            emit_timeseries_json(&upd.m);
        }
        return;
    }
    let adv_total = totals
        .iter()
        .find(|(s, _)| *s == Scheme::Advanced)
        .map(|(_, t)| *t)
        .expect("advanced ran");
    let overhead = (upd.m.total_traffic as f64 / adv_total as f64 - 1.0) * 100.0;
    print_table(
        "route-update overhead (Section 5.5)",
        &[
            ("Advanced total bytes", adv_total.to_string()),
            (
                "Advanced + updates total bytes",
                upd.m.total_traffic.to_string(),
            ),
            ("bandwidth increase", format!("{overhead:.2}%")),
        ],
    );
}
