//! The DNS resolution experiment runner (Figures 13-16).

use dpc_common::NodeId;
use dpc_common::SeededRng;
use dpc_engine::ProvRecorder;
use dpc_ndlog::programs;
use dpc_netsim::{topo, SimTime};
use dpc_telemetry::Telemetry;
use dpc_workload::Zipf;

use dpc_apps::dns;

use crate::{RunMeasurements, Scheme};

/// Configuration of a DNS run.
#[derive(Debug, Clone)]
pub struct DnsConfig {
    /// Topology/workload RNG seed.
    pub seed: u64,
    /// Number of nameservers (the paper uses 100, max depth 27).
    pub servers: usize,
    /// Number of distinct URLs (the paper uses 38).
    pub urls: usize,
    /// Requests per second.
    pub rate: f64,
    /// Simulated duration of the injection phase.
    pub duration: SimTime,
    /// Storage snapshot interval.
    pub snapshot_every: SimTime,
    /// Zipf exponent for URL popularity (the paper follows Jung et al.'s
    /// observation of a Zipfian distribution; 1.0 is classic Zipf).
    pub zipf_exponent: f64,
    /// If set, send exactly this many requests, evenly spaced (Figure
    /// 14/15 style).
    pub total_requests: Option<usize>,
    /// Evaluate rules through compiled plans (the default). `false` runs
    /// the naive AST interpreter — the "before" baseline of
    /// `BENCH_pr3.json`.
    pub compiled_plans: bool,
}

impl Default for DnsConfig {
    fn default() -> Self {
        DnsConfig {
            seed: 42,
            servers: 100,
            urls: 38,
            rate: 200.0,
            duration: SimTime::from_secs(10),
            snapshot_every: SimTime::from_secs(1),
            zipf_exponent: 1.0,
            total_requests: None,
            compiled_plans: true,
        }
    }
}

impl DnsConfig {
    /// The paper's Figure 13/16 parameters: 1000 requests/second over
    /// 100 seconds.
    pub fn paper_scale(seed: u64) -> DnsConfig {
        DnsConfig {
            seed,
            rate: 1000.0,
            duration: SimTime::from_secs(100),
            snapshot_every: SimTime::from_secs(10),
            ..DnsConfig::default()
        }
    }
}

/// Output of one DNS run.
#[derive(Debug, Clone)]
pub struct DnsRunOutput {
    /// Storage/traffic measurements.
    pub m: RunMeasurements,
    /// Requests injected.
    pub injected: usize,
    /// Requests that resolved (produced a `reply`).
    pub resolved: usize,
    /// Wall-clock seconds spent processing events (the drive phase —
    /// excludes topology generation, deployment and injection
    /// scheduling).
    pub processing_secs: f64,
}

/// Run the DNS workload under `scheme` via the [`Scheme::recorder`]
/// factory.
pub fn run_dns(scheme: Scheme, cfg: &DnsConfig) -> DnsRunOutput {
    run_generic(cfg, |n| scheme.recorder(&programs::dns_resolution(), n))
}

fn run_generic<R: ProvRecorder>(cfg: &DnsConfig, make: impl FnOnce(usize) -> R) -> DnsRunOutput {
    let mut rng = SeededRng::seed_from_u64(cfg.seed);
    let tree = topo::tree(
        &mut rng,
        &topo::TreeParams {
            nodes: cfg.servers,
            ..topo::TreeParams::default()
        },
    );
    let n = tree.net.node_count();
    let mut rt = dns::make_runtime(&tree, make(n));
    rt.set_compiled_plans(cfg.compiled_plans);
    let telemetry = Telemetry::handle();
    telemetry.set_snapshot_every_nanos(cfg.snapshot_every.as_nanos());
    telemetry.set_timeseries(
        cfg.snapshot_every.as_nanos(),
        dpc_telemetry::DEFAULT_SERIES_CAPACITY,
    );
    rt.attach_telemetry(telemetry);
    // A single client (the root node's host role): equivalence classes are
    // then exactly the URLs, matching the paper's Figure 14 discussion.
    let client = tree.root;
    let dep = dns::deploy(&mut rt, &tree, cfg.urls, &[client]).expect("enough servers for URLs");
    rt.clear_stats();

    // Zipfian request stream.
    let zipf = Zipf::new(dep.urls.len(), cfg.zipf_exponent);
    let total = cfg
        .total_requests
        .unwrap_or((cfg.rate * cfg.duration.as_secs_f64()).floor() as usize);
    let interval = SimTime::from_nanos(cfg.duration.as_nanos() / (total as u64).max(1));
    for i in 0..total {
        let url = &dep.urls[zipf.sample(&mut rng)].0;
        let at = SimTime::from_nanos(interval.as_nanos() * i as u64);
        rt.inject_at(dns::url_event(client, url.clone(), i as i64), at)
            .expect("valid url event");
    }

    // Drive to completion: storage-over-time comes from the sampler
    // (enabled on the snapshot cadence above) instead of a hand-rolled
    // stepping loop.
    let t0 = std::time::Instant::now();
    rt.run().expect("drain");
    let processing_secs = t0.elapsed().as_secs_f64();
    let duration = rt.now().max(cfg.duration);

    let per_node_storage: Vec<usize> = (0..n)
        .map(|i| rt.recorder().storage_at(NodeId(i as u32)))
        .collect();
    let telemetry = rt
        .telemetry()
        .cloned()
        .expect("run_generic always attaches telemetry");
    let snapshots = crate::snapshots_from_series(&crate::sum_timeseries(
        &telemetry,
        "recorder.storage_bytes#",
    ));
    DnsRunOutput {
        m: RunMeasurements {
            per_node_storage,
            snapshots,
            traffic_per_second: rt.stats().per_second_series(),
            total_traffic: rt.stats().total_bytes(),
            per_link_bytes: rt.stats().per_link_totals(),
            outputs: rt.outputs().len(),
            rules_fired: rt.rules_fired(),
            duration,
            telemetry,
        },
        injected: total,
        resolved: rt.outputs().len(),
        processing_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DnsConfig {
        DnsConfig {
            servers: 30,
            urls: 10,
            rate: 50.0,
            duration: SimTime::from_secs(2),
            ..DnsConfig::default()
        }
    }

    #[test]
    fn every_request_resolves() {
        for s in Scheme::PAPER {
            let out = run_dns(s, &tiny());
            assert_eq!(out.resolved, out.injected, "{}", s.name());
        }
    }

    #[test]
    fn storage_ordering_matches_paper() {
        let cfg = tiny();
        let e = run_dns(Scheme::Exspan, &cfg).m.total_storage();
        let b = run_dns(Scheme::Basic, &cfg).m.total_storage();
        let a = run_dns(Scheme::Advanced, &cfg).m.total_storage();
        assert!(b < e, "basic {b} < exspan {e}");
        assert!(a < b, "advanced {a} < basic {b}");
    }

    #[test]
    fn advanced_bandwidth_overhead_is_visible_for_dns() {
        // Figure 15: DNS requests carry no payload, so Advanced's metadata
        // shows up as measurably higher bandwidth than Basic/ExSPAN.
        let cfg = tiny();
        let e = run_dns(Scheme::Exspan, &cfg).m.total_traffic as f64;
        let a = run_dns(Scheme::Advanced, &cfg).m.total_traffic as f64;
        let ratio = a / e;
        assert!(ratio > 1.05, "ratio {ratio} should exceed 1.05");
        assert!(ratio < 1.80, "ratio {ratio} should stay moderate");
    }

    #[test]
    fn fixed_total_requests_mode() {
        let cfg = DnsConfig {
            total_requests: Some(60),
            ..tiny()
        };
        let out = run_dns(Scheme::Advanced, &cfg);
        assert_eq!(out.injected, 60);
        assert_eq!(out.resolved, 60);
    }

    #[test]
    fn advanced_storage_scales_with_urls_not_requests() {
        // Figure 14's mechanism: with requests fixed, more URLs means more
        // equivalence classes and thus more Advanced storage.
        let few = DnsConfig {
            urls: 5,
            total_requests: Some(100),
            ..tiny()
        };
        let many = DnsConfig {
            urls: 20,
            total_requests: Some(100),
            ..tiny()
        };
        let a_few = run_dns(Scheme::Advanced, &few).m.total_storage();
        let a_many = run_dns(Scheme::Advanced, &many).m.total_storage();
        assert!(a_many > a_few, "{a_many} > {a_few}");
        // ExSPAN's storage instead tracks the request count.
        let e_few = run_dns(Scheme::Exspan, &few).m.total_storage();
        let e_many = run_dns(Scheme::Exspan, &many).m.total_storage();
        let drift = (e_many as f64 - e_few as f64).abs() / e_few as f64;
        assert!(drift < 0.35, "ExSPAN drift {drift} should be modest");
    }
}
