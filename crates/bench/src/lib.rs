#![warn(missing_docs)]

//! The evaluation harness behind the `fig08`..`fig16` binaries.
//!
//! Each experiment mirrors one figure of the paper's Section 6. The
//! default configurations are scaled down from the paper's so every
//! harness finishes in seconds; pass `--paper-scale` to a binary to run
//! the paper's parameters (slower and memory-hungry for ExSPAN, exactly as
//! the paper's 131 MB/s growth rate suggests).

pub mod dnsrun;
pub mod fwdrun;
pub mod history;
#[cfg(feature = "microbench")]
pub mod microbench;
pub mod report;
pub mod tracerun;

use dpc_common::NodeId;
use dpc_netsim::SimTime;
use dpc_telemetry::TelemetryHandle;

pub use dnsrun::{run_dns, DnsConfig, DnsRunOutput};
pub use fwdrun::{
    forwarding_query_latencies, run_forwarding, simulated_query_means, FwdConfig, FwdRunOutput,
};
pub use history::{BenchRecord, GateResult, History, Tolerance};
pub use tracerun::{
    aggregate_breakdown, print_trace_report, query_summaries, run_traced_queries,
    span_histograms_json, trace_summary_json, QuerySummary, TraceRunOutput,
};

/// Run the forwarding workload under several schemes in parallel (the
/// runs are independent simulations).
pub fn run_forwarding_schemes(cfg: &FwdConfig, schemes: &[Scheme]) -> Vec<(Scheme, FwdRunOutput)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = schemes
            .iter()
            .map(|&sc| scope.spawn(move || (sc, run_forwarding(sc, cfg))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheme run panicked"))
            .collect()
    })
}

/// Run the DNS workload under several schemes in parallel.
pub fn run_dns_schemes(cfg: &DnsConfig, schemes: &[Scheme]) -> Vec<(Scheme, DnsRunOutput)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = schemes
            .iter()
            .map(|&sc| scope.spawn(move || (sc, run_dns(sc, cfg))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheme run panicked"))
            .collect()
    })
}
pub use report::{
    emit_run_json, emit_run_json_with, emit_timeseries_json, print_cdf, print_series, print_table,
    run_json, run_json_with,
};

// The scheme enum (and its boxed-recorder factory) lives in `dpc-core`;
// the harness re-exports it so figure binaries keep a single import path.
pub use dpc_core::Scheme;

/// Shared storage/traffic measurements from one run.
#[derive(Debug, Clone)]
pub struct RunMeasurements {
    /// Final provenance storage per node, bytes.
    pub per_node_storage: Vec<usize>,
    /// `(second, total storage bytes)` snapshots.
    pub snapshots: Vec<(u64, usize)>,
    /// Bytes on the wire per simulated second.
    pub traffic_per_second: Vec<u64>,
    /// Total bytes on the wire.
    pub total_traffic: u64,
    /// Total bytes per (undirected) link, sorted by endpoint pair.
    pub per_link_bytes: Vec<((NodeId, NodeId), u64)>,
    /// Output tuples derived.
    pub outputs: usize,
    /// Rule firings across all nodes.
    pub rules_fired: u64,
    /// Wall-clock span of the simulated run.
    pub duration: SimTime,
    /// The run's telemetry registry (counters, snapshots, traces).
    pub telemetry: TelemetryHandle,
}

impl RunMeasurements {
    /// `htequi` equivalence-cache `(hits, misses)` over the run — nonzero
    /// only under the Advanced schemes.
    pub fn htequi_hits_misses(&self) -> (u64, u64) {
        (
            self.telemetry.counter_total("recorder.htequi_hits"),
            self.telemetry.counter_total("recorder.htequi_misses"),
        )
    }

    /// `htequi` hit rate in `[0, 1]`, or `None` when the scheme never
    /// consulted the cache.
    pub fn htequi_hit_rate(&self) -> Option<f64> {
        let (h, m) = self.htequi_hits_misses();
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Secondary-index join probe `(hits, misses)` over the run — nonzero
    /// only when the engine evaluates through compiled rule plans.
    pub fn index_hits_misses(&self) -> (u64, u64) {
        (
            self.telemetry
                .counter_total(dpc_telemetry::counters::INDEX_HITS),
            self.telemetry
                .counter_total(dpc_telemetry::counters::INDEX_MISSES),
        )
    }

    /// Rule plans compiled at runtime construction.
    pub fn plans_compiled(&self) -> u64 {
        self.telemetry
            .counter_total(dpc_telemetry::counters::PLANS_COMPILED)
    }

    /// Secondary-index hit ratio in `[0, 1]`, or `None` when no probes
    /// ran (e.g. the naive interpreter path).
    pub fn index_hit_ratio(&self) -> Option<f64> {
        let (h, m) = self.index_hits_misses();
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Total provenance storage over simulated time as `(t_ns, bytes)`,
    /// from the sampler's per-node `recorder.storage_bytes#n` series
    /// (empty when time-series sampling was off or the scheme records no
    /// provenance).
    pub fn storage_series(&self) -> Vec<(u64, f64)> {
        sum_timeseries(&self.telemetry, "recorder.storage_bytes#")
    }

    /// Cumulative bytes on the wire over simulated time as
    /// `(t_ns, bytes)`, from the sampler's `net.bytes_total` series.
    pub fn bandwidth_series(&self) -> Vec<(u64, f64)> {
        self.telemetry
            .timeseries_get("net.bytes_total")
            .unwrap_or_default()
    }

    /// Bandwidth over simulated time as `(second, bytes/s)` rows,
    /// differentiating the cumulative [`RunMeasurements::bandwidth_series`]
    /// between adjacent sampling stamps.
    pub fn bandwidth_rate_series(&self) -> Vec<(f64, f64)> {
        let mut prev = (0u64, 0.0f64);
        let mut out = Vec::new();
        for (t, v) in self.bandwidth_series() {
            let dt = (t - prev.0) as f64 / 1e9;
            if dt > 0.0 {
                out.push((t as f64 / 1e9, (v - prev.1) / dt));
            }
            prev = (t, v);
        }
        out
    }
}

/// Sum every sampled series whose key starts with `prefix` (per-node
/// gauges like `recorder.storage_bytes#`) into one total series at the
/// union of their stamps, carrying each component's last value forward —
/// nodes sample only when they mutate, so at any given stamp some
/// components just hold their previous value.
pub fn sum_timeseries(telemetry: &TelemetryHandle, prefix: &str) -> Vec<(u64, f64)> {
    let series: Vec<Vec<(u64, f64)>> = telemetry
        .timeseries()
        .into_iter()
        .filter_map(|(k, pts)| k.starts_with(prefix).then_some(pts))
        .collect();
    let mut stamps: Vec<u64> = series.iter().flatten().map(|&(t, _)| t).collect();
    stamps.sort_unstable();
    stamps.dedup();
    let mut idx = vec![0usize; series.len()];
    let mut held = vec![0.0f64; series.len()];
    let mut out = Vec::with_capacity(stamps.len());
    for &t in &stamps {
        for (i, s) in series.iter().enumerate() {
            while idx[i] < s.len() && s[idx[i]].0 <= t {
                held[i] = s[idx[i]].1;
                idx[i] += 1;
            }
        }
        out.push((t, held.iter().sum()));
    }
    out
}

/// Collapse a `(t_ns, bytes)` storage series into the legacy
/// `(second, bytes)` snapshot shape: one entry per distinct simulated
/// second, keeping the last sample within each second.
pub fn snapshots_from_series(series: &[(u64, f64)]) -> Vec<(u64, usize)> {
    let mut out: Vec<(u64, usize)> = Vec::new();
    for &(t_ns, v) in series {
        let sec = t_ns / 1_000_000_000;
        let bytes = v as usize;
        match out.last_mut() {
            Some(last) if last.0 == sec => last.1 = bytes,
            _ => out.push((sec, bytes)),
        }
    }
    out
}

impl RunMeasurements {
    /// Total final storage across nodes.
    pub fn total_storage(&self) -> usize {
        self.per_node_storage.iter().sum()
    }

    /// Per-node storage growth rates in Mbps over the run, the metric of
    /// Figures 8 and 13.
    pub fn growth_rates_mbps(&self) -> Vec<f64> {
        self.per_node_storage
            .iter()
            .map(|&b| dpc_workload::mbps(b, self.duration))
            .collect()
    }
}

/// Minimal CLI handling shared by the figure binaries: recognizes
/// `--paper-scale` and `--seed <n>`.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Run the paper's full-scale parameters.
    pub paper_scale: bool,
    /// RNG seed for topology and workload.
    pub seed: u64,
    /// Emit machine-readable JSON-lines records instead of plain text.
    pub json: bool,
    /// Record causal spans during runs that support tracing.
    pub trace: bool,
    /// Head-based sampling rate for execution traces: trace 1 in every
    /// `trace_sample` executions (1 = everything).
    pub trace_sample: u64,
    /// Emit the sampled time series (JSON-lines `series` records after
    /// the run record; implies `--json`-style machine output for them).
    pub timeseries: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            paper_scale: false,
            seed: 42,
            json: false,
            trace: false,
            trace_sample: 1,
            timeseries: false,
        }
    }
}

impl Cli {
    /// Parse from `std::env::args`, exiting with usage on bad input.
    pub fn parse() -> Cli {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!(
                    "{msg}\nusage: [--paper-scale] [--seed <n>] [--json] [--trace] [--trace-sample <n>] [--timeseries]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable core of
    /// [`Cli::parse`]).
    pub fn parse_from<I, S>(args: I) -> Result<Cli, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cli = Cli::default();
        let mut args = args.into_iter().map(Into::into);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper-scale" => cli.paper_scale = true,
                "--json" => cli.json = true,
                "--trace" => cli.trace = true,
                "--timeseries" => cli.timeseries = true,
                "--trace-sample" => {
                    cli.trace = true;
                    cli.trace_sample = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "--trace-sample requires an integer >= 1".to_string())?;
                }
                "--seed" => {
                    cli.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| "--seed requires an integer".to_string())?;
                }
                "--help" | "-h" => {
                    return Err("help requested".to_string());
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(cli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parsing() {
        let none: [&str; 0] = [];
        let cli = Cli::parse_from(none).unwrap();
        assert!(!cli.paper_scale);
        assert_eq!(cli.seed, 42);
        let cli = Cli::parse_from(["--paper-scale", "--seed", "7"]).unwrap();
        assert!(cli.paper_scale);
        assert_eq!(cli.seed, 7);
        assert!(!cli.json);
        assert!(!cli.trace);
        assert_eq!(cli.trace_sample, 1);
        assert!(Cli::parse_from(["--json"]).unwrap().json);
        let cli = Cli::parse_from(["--trace"]).unwrap();
        assert!(cli.trace);
        assert_eq!(cli.trace_sample, 1);
        let cli = Cli::parse_from(["--trace-sample", "8"]).unwrap();
        assert!(cli.trace);
        assert_eq!(cli.trace_sample, 8);
        assert!(!cli.timeseries);
        assert!(Cli::parse_from(["--timeseries"]).unwrap().timeseries);
        assert!(Cli::parse_from(["--trace-sample", "0"]).is_err());
        assert!(Cli::parse_from(["--trace-sample"]).is_err());
        assert!(Cli::parse_from(["--seed"]).is_err());
        assert!(Cli::parse_from(["--seed", "abc"]).is_err());
        assert!(Cli::parse_from(["--bogus"]).is_err());
        assert!(Cli::parse_from(["--help"]).is_err());
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Exspan.name(), "ExSPAN");
        assert_eq!(Scheme::PAPER.len(), 3);
    }

    #[test]
    fn parallel_runs_match_sequential_runs() {
        let cfg = FwdConfig {
            pairs: 4,
            rate_per_pair: 4.0,
            duration: SimTime::from_secs(1),
            ..FwdConfig::default()
        };
        let par = run_forwarding_schemes(&cfg, &Scheme::PAPER);
        for (scheme, out) in par {
            let seq = run_forwarding(scheme, &cfg);
            assert_eq!(
                out.m.total_storage(),
                seq.m.total_storage(),
                "{}",
                scheme.name()
            );
            assert_eq!(out.m.total_traffic, seq.m.total_traffic);
            assert_eq!(out.m.outputs, seq.m.outputs);
        }
    }

    /// The sampler is deterministic end to end: two runs with the same
    /// seed and cadence produce byte-identical JSON-lines exports (same
    /// keys, same aligned stamps, same values — no wall-clock leakage).
    #[test]
    fn sampler_export_is_deterministic_across_runs() {
        let cfg = FwdConfig {
            pairs: 3,
            rate_per_pair: 4.0,
            duration: SimTime::from_secs(1),
            ..FwdConfig::default()
        };
        for scheme in [Scheme::Exspan, Scheme::Advanced] {
            let a = run_forwarding(scheme, &cfg);
            let b = run_forwarding(scheme, &cfg);
            let ja = a.m.telemetry.timeseries_json_lines();
            assert_eq!(
                ja,
                b.m.telemetry.timeseries_json_lines(),
                "{}",
                scheme.name()
            );
            assert!(!ja.is_empty(), "{} sampled nothing", scheme.name());
            assert_eq!(
                a.m.telemetry.timeseries_csv(),
                b.m.telemetry.timeseries_csv()
            );
        }
    }

    #[test]
    fn sum_timeseries_carries_values_forward() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_timeseries(1, 64);
        // Node 0 samples at 1000 and 3000; node 1 only at 2000.
        t.ts_record(1000, "recorder.storage_bytes#0", 10.0);
        t.ts_record(2000, "recorder.storage_bytes#1", 5.0);
        t.ts_record(3000, "recorder.storage_bytes#0", 20.0);
        t.ts_record(3000, "unrelated.series", 99.0);
        let total = sum_timeseries(&t, "recorder.storage_bytes#");
        assert_eq!(total, vec![(1000, 10.0), (2000, 15.0), (3000, 25.0)]);
    }

    #[test]
    fn snapshots_collapse_to_seconds_keeping_last() {
        let series = vec![
            (1_000_000_000, 10.0),
            (2_000_000_000, 20.0),
            (2_500_000_000, 30.0), // same second: keeps the later value
        ];
        assert_eq!(snapshots_from_series(&series), vec![(1, 10), (2, 30)]);
    }

    #[test]
    fn measurements_helpers() {
        let m = RunMeasurements {
            per_node_storage: vec![1_000_000, 2_000_000],
            snapshots: vec![],
            traffic_per_second: vec![],
            total_traffic: 0,
            per_link_bytes: vec![],
            outputs: 0,
            rules_fired: 0,
            duration: SimTime::from_secs(8),
            telemetry: dpc_telemetry::Telemetry::handle(),
        };
        assert_eq!(m.total_storage(), 3_000_000);
        let rates = m.growth_rates_mbps();
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }
}
