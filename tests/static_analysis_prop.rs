//! Randomized tests of the static analysis over *randomly generated*
//! DELPs, driven by the in-tree seeded PRNG.
//!
//! The generator builds chain programs of the shape
//!
//! ```text
//! ri e_i(@N, X1..Xm) :- e_{i-1}(@L, X1..Xm), s_i(@L, X_{j in S_i}.., N).
//! ```
//!
//! where each rule joins a random subset `S_i` of the event attributes
//! against its slow table. For this family the equivalence keys have a
//! closed form — `{0} ∪ (∪_i S_i)` — giving an independent oracle for
//! `GetEquiKeys`. The runtime property then checks Theorem 1 end to end:
//! events agreeing on the oracle keys produce equivalent trees; events
//! differing on a key attribute produce non-equivalent trees.

use dpc::netsim::topo;
use dpc::prelude::*;
use dpc_common::{Rng, SeededRng};

const CASES: u64 = 48;

/// A generated chain-DELP description.
#[derive(Debug, Clone)]
struct ChainProgram {
    /// Number of rules (chain length).
    rules: usize,
    /// Non-location event attributes.
    arity: usize,
    /// Joined attribute subset per rule (1-based attribute indices).
    joins: Vec<Vec<usize>>,
}

impl ChainProgram {
    fn random(rng: &mut SeededRng) -> ChainProgram {
        let rules = rng.random_range(1..5u64) as usize;
        let arity = rng.random_range(1..4u64) as usize;
        let joins = (0..rules)
            .map(|_| {
                // A random subset of {1..=arity}.
                (1..=arity).filter(|_| rng.random_bool(0.5)).collect()
            })
            .collect();
        ChainProgram {
            rules,
            arity,
            joins,
        }
    }

    fn source(&self) -> String {
        let vars: Vec<String> = (1..=self.arity).map(|j| format!("X{j}")).collect();
        let var_list = vars.join(", ");
        let mut src = String::new();
        for i in 1..=self.rules {
            let joined: Vec<String> = self.joins[i - 1].iter().map(|j| format!("X{j}")).collect();
            let slow_args = if joined.is_empty() {
                "N".to_string()
            } else {
                format!("{}, N", joined.join(", "))
            };
            src.push_str(&format!(
                "r{i} e{i}(@N, {var_list}) :- e{im1}(@L, {var_list}), s{i}(@L, {slow_args}).\n",
                im1 = i - 1,
            ));
        }
        src
    }

    /// The closed-form equivalence keys: the location plus every
    /// attribute some rule joins with slow state.
    fn oracle_keys(&self) -> Vec<usize> {
        let mut keys = vec![0];
        for j in 1..=self.arity {
            if self.joins.iter().any(|s| s.contains(&j)) {
                keys.push(j);
            }
        }
        keys
    }

    fn delp(&self) -> Delp {
        Delp::new(parse_program(&self.source()).expect("generated program parses"))
            .expect("generated program is a valid DELP")
    }

    /// Event tuple with the given attribute values entering at node 0.
    fn event(&self, values: &[i64]) -> Tuple {
        assert_eq!(values.len(), self.arity);
        let mut args = vec![Value::Addr(NodeId(0))];
        args.extend(values.iter().map(|&v| Value::Int(v)));
        Tuple::new("e0", args)
    }

    /// Install all slow rows over domain {0,1} along a line of
    /// `rules + 1` nodes, so every event completes.
    fn deploy<R: ProvRecorder>(&self, rt: &mut Runtime<R>) {
        for i in 1..=self.rules {
            let node = NodeId(i as u32 - 1);
            let next = NodeId(i as u32);
            let k = self.joins[i - 1].len();
            for combo in 0..(1u32 << k) {
                let mut args = vec![Value::Addr(node)];
                for b in 0..k {
                    args.push(Value::Int(((combo >> b) & 1) as i64));
                }
                args.push(Value::Addr(next));
                rt.install(Tuple::new(format!("s{i}"), args))
                    .expect("slow rows install");
            }
        }
    }
}

fn random_bits(rng: &mut SeededRng, n: usize) -> Vec<i64> {
    (0..n).map(|_| rng.random_range(0..2u64) as i64).collect()
}

/// `GetEquiKeys` matches the closed-form oracle on every generated
/// chain program.
#[test]
fn get_equi_keys_matches_oracle() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x31_000 + case);
        let prog = ChainProgram::random(&mut rng);
        let delp = prog.delp();
        let keys = equivalence_keys(&delp);
        assert_eq!(keys.rel(), "e0");
        assert_eq!(keys.indices(), &prog.oracle_keys()[..], "{:?}", prog);
    }
}

/// Theorem 1 on generated programs: key-equal events give equivalent
/// trees; flipping a key attribute breaks equivalence.
#[test]
fn theorem1_on_generated_programs() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x32_000 + case);
        let prog = ChainProgram::random(&mut rng);
        let base = random_bits(&mut rng, 3);
        let delp = prog.delp();
        let keys = equivalence_keys(&delp);
        let net = topo::line(prog.rules + 1, Link::STUB_STUB);
        let mut rt = Runtime::new(delp, net, GroundTruthRecorder::new());
        prog.deploy(&mut rt);

        let vals: Vec<i64> = base.iter().take(prog.arity).copied().collect();
        let ev1 = prog.event(&vals);

        // A key-equal sibling: flip one non-key attribute if one exists.
        let non_key: Option<usize> = (1..=prog.arity).find(|j| !keys.indices().contains(j));
        let mut vals2 = vals.clone();
        if let Some(j) = non_key {
            vals2[j - 1] = 1 - vals2[j - 1];
        }
        let ev2 = prog.event(&vals2);
        assert!(keys.equivalent(&ev1, &ev2).unwrap());

        rt.inject(ev1.clone()).unwrap();
        rt.run().unwrap();
        rt.inject(ev2.clone()).unwrap();
        rt.run().unwrap();
        let trees = rt.recorder().trees();
        // Both executions complete (ev1 == ev2 is possible when there is
        // no non-key attribute to flip — the engine still runs it twice).
        assert_eq!(trees.len(), 2);
        assert!(trees[0].2.equivalent(&trees[1].2));

        // Flip a non-location key attribute, if any rule joins one: the
        // slow tuples along the chain differ, so trees must diverge.
        if let Some(&j) = keys.indices().iter().find(|&&j| j != 0) {
            let mut vals3 = vals.clone();
            vals3[j - 1] = 1 - vals3[j - 1];
            let ev3 = prog.event(&vals3);
            assert!(!keys.equivalent(&ev1, &ev3).unwrap());
            rt.inject(ev3).unwrap();
            rt.run().unwrap();
            let trees = rt.recorder().trees();
            let last = &trees.last().unwrap().2;
            assert!(!trees[0].2.equivalent(last));
        }
    }
}

/// Theorems 3+5 on generated programs: Advanced round-trips every
/// output against the ground truth, including compressed executions.
#[test]
fn advanced_round_trip_on_generated_programs() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x33_000 + case);
        let prog = ChainProgram::random(&mut rng);
        let flip_count = rng.random_range(1..5u64) as usize;
        let flips: Vec<Vec<i64>> = (0..flip_count).map(|_| random_bits(&mut rng, 3)).collect();
        let delp = prog.delp();
        let keys = equivalence_keys(&delp);
        let n = prog.rules + 1;
        let net = topo::line(n, Link::STUB_STUB);
        let rec = TeeRecorder::new(AdvancedRecorder::new(n, keys), GroundTruthRecorder::new());
        let mut rt = Runtime::new(delp, net, rec);
        prog.deploy(&mut rt);

        for f in &flips {
            let vals: Vec<i64> = f.iter().take(prog.arity).copied().collect();
            rt.inject(prog.event(&vals)).unwrap();
            rt.run().unwrap();
        }
        assert!(!rt.outputs().is_empty());
        assert_eq!(rt.recorder().primary.hmap_misses(), 0);
        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let got = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid)
                .expect("queryable");
            let want = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .expect("ground truth recorded");
            assert_eq!(&got.tree, want);
        }
    }
}
