//! Larger end-to-end scenarios across crates: the transit-stub topology,
//! branching executions (DHCP), ARP, and the paper's aggregate claims.

use dpc::apps::{arp, dhcp};
use dpc::netsim::topo;
use dpc::prelude::*;
use dpc::workload::random_pairs;
use dpc_common::SeededRng;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// On the paper's 100-node transit-stub topology: every scheme answers
/// every query with the ground-truth tree, and storage is ordered
/// Advanced < Basic < ExSPAN.
#[test]
fn transit_stub_all_schemes_round_trip() {
    let mut rng = SeededRng::seed_from_u64(99);
    let ts = topo::transit_stub(&mut rng, &topo::TransitStubParams::default());
    let pairs = random_pairs(&mut rng, &ts.stub, 10);
    let keys = equivalence_keys(&programs::packet_forwarding());

    let mut storages = Vec::new();
    // ExSPAN.
    {
        let rec = TeeRecorder::new(ExspanRecorder::new(100), GroundTruthRecorder::new());
        let mut rt = forwarding::make_runtime(ts.net.clone(), rec);
        forwarding::install_routes_for_pairs(&mut rt, &pairs).unwrap();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            for k in 0..3 {
                rt.inject(forwarding::packet(s, s, d, format!("p{i}-{k}")))
                    .unwrap();
            }
        }
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 30);
        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let got = query_exspan(&ctx, &rt.recorder().primary, &out.tuple).unwrap();
            let want = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .unwrap();
            assert_eq!(&got.tree, want);
        }
        storages.push(
            ts.net
                .nodes()
                .map(|m| rt.recorder().storage_at(m))
                .sum::<usize>(),
        );
    }
    // Basic.
    {
        let rec = TeeRecorder::new(BasicRecorder::new(100), GroundTruthRecorder::new());
        let mut rt = forwarding::make_runtime(ts.net.clone(), rec);
        forwarding::install_routes_for_pairs(&mut rt, &pairs).unwrap();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            for k in 0..3 {
                rt.inject(forwarding::packet(s, s, d, format!("p{i}-{k}")))
                    .unwrap();
            }
        }
        rt.run().unwrap();
        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let got = query_basic(&ctx, &rt.recorder().primary, &out.tuple).unwrap();
            let want = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .unwrap();
            assert_eq!(&got.tree, want);
        }
        storages.push(
            ts.net
                .nodes()
                .map(|m| rt.recorder().storage_at(m))
                .sum::<usize>(),
        );
    }
    // Advanced.
    {
        let rec = TeeRecorder::new(AdvancedRecorder::new(100, keys), GroundTruthRecorder::new());
        let mut rt = forwarding::make_runtime(ts.net.clone(), rec);
        forwarding::install_routes_for_pairs(&mut rt, &pairs).unwrap();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            for k in 0..3 {
                rt.inject(forwarding::packet(s, s, d, format!("p{i}-{k}")))
                    .unwrap();
            }
        }
        rt.run().unwrap();
        assert_eq!(rt.recorder().primary.hmap_misses(), 0);
        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let got = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).unwrap();
            let want = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .unwrap();
            assert_eq!(&got.tree, want);
        }
        storages.push(
            ts.net
                .nodes()
                .map(|m| rt.recorder().storage_at(m))
                .sum::<usize>(),
        );
    }
    let (e, b, a) = (storages[0], storages[1], storages[2]);
    assert!(b < e, "basic {b} < exspan {e}");
    assert!(a < b, "advanced {a} < basic {b}");
}

/// DHCP with a multi-address pool: one execution derives several outputs
/// (several derivations per equivalence class), and every lease — from
/// both the materializing and the compressed execution — is queryable.
#[test]
fn dhcp_branching_executions_are_queryable() {
    let keys = equivalence_keys(&programs::dhcp());
    let net = topo::star(3, Link::STUB_STUB);
    let rec = TeeRecorder::new(AdvancedRecorder::new(3, keys), GroundTruthRecorder::new());
    let mut rt = dhcp::make_runtime(net, rec);
    dhcp::deploy(
        &mut rt,
        n(0),
        &[n(1)],
        &["10.0.0.1", "10.0.0.2", "10.0.0.3"],
    )
    .unwrap();

    rt.inject(dhcp::discover(n(1), 1)).unwrap();
    rt.run().unwrap();
    rt.inject(dhcp::discover(n(1), 2)).unwrap(); // compressed execution
    rt.run().unwrap();

    assert_eq!(rt.outputs().len(), 6);
    assert_eq!(rt.recorder().primary.hmap_misses(), 0);
    let ctx = QueryCtx::from_runtime(&rt);
    for out in rt.outputs() {
        let got = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid)
            .unwrap_or_else(|e| panic!("query for {} failed: {e}", out.tuple));
        let want = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .expect("ground truth recorded");
        assert_eq!(&got.tree, want, "output {}", out.tuple);
    }
}

/// ARP round trip under all three schemes.
#[test]
fn arp_round_trip_all_schemes() {
    let net = topo::star(4, Link::STUB_STUB);
    let bindings = [("10.0.0.5", "aa:05"), ("10.0.0.6", "aa:06")];

    let rec = TeeRecorder::new(ExspanRecorder::new(4), GroundTruthRecorder::new());
    let mut rt = arp::make_runtime(net.clone(), rec);
    arp::deploy(&mut rt, n(0), &[n(1), n(2), n(3)], &bindings).unwrap();
    rt.inject(arp::who_has(n(1), "10.0.0.5", 1)).unwrap();
    rt.inject(arp::who_has(n(2), "10.0.0.6", 2)).unwrap();
    rt.run().unwrap();
    let ctx = QueryCtx::from_runtime(&rt);
    for out in rt.outputs() {
        let got = query_exspan(&ctx, &rt.recorder().primary, &out.tuple).unwrap();
        let want = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        assert_eq!(&got.tree, want);
    }

    let keys = equivalence_keys(&programs::arp());
    let rec = TeeRecorder::new(AdvancedRecorder::new(4, keys), GroundTruthRecorder::new());
    let mut rt = arp::make_runtime(net, rec);
    arp::deploy(&mut rt, n(0), &[n(1), n(2), n(3)], &bindings).unwrap();
    // Same (client, ip) class twice.
    rt.inject(arp::who_has(n(1), "10.0.0.5", 1)).unwrap();
    rt.run().unwrap();
    rt.inject(arp::who_has(n(1), "10.0.0.5", 2)).unwrap();
    rt.run().unwrap();
    let ctx = QueryCtx::from_runtime(&rt);
    for out in rt.outputs() {
        let got = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).unwrap();
        let want = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        assert_eq!(&got.tree, want);
    }
    // The second who-has reused the first's tree.
    assert_eq!(rt.recorder().primary.row_counts(n(0)).1, 1);
}

/// Section 3.2's relations of interest: declaring an intermediate head
/// relation of interest makes its tuples directly queryable — with the
/// partial provenance chain up to that point — under every scheme's
/// stage-3 association.
#[test]
fn relations_of_interest_make_intermediates_queryable() {
    use dpc::apps::dns;
    use dpc_common::SeededRng;
    let mut rng = SeededRng::seed_from_u64(23);
    let tree = topo::tree(
        &mut rng,
        &topo::TreeParams {
            nodes: 30,
            ..topo::TreeParams::default()
        },
    );
    let keys = equivalence_keys(&programs::dns_resolution());
    let rec = TeeRecorder::new(AdvancedRecorder::new(30, keys), GroundTruthRecorder::new());
    let mut rt = dns::runtime_builder(&tree)
        .recorder(rec)
        .interest(["dnsResult"])
        .build()
        .unwrap();
    let dep = dns::deploy(&mut rt, &tree, 6, &[tree.root]).unwrap();

    // Two resolutions per URL: the second is compressed.
    for (i, (url, _, _)) in dep.urls.iter().enumerate() {
        rt.inject(dns::url_event(tree.root, url.clone(), i as i64))
            .unwrap();
        rt.run().unwrap();
        rt.inject(dns::url_event(tree.root, url.clone(), 100 + i as i64))
            .unwrap();
        rt.run().unwrap();
    }
    assert_eq!(rt.outputs().len(), 12);
    assert_eq!(rt.recorder().primary.hmap_misses(), 0);

    // Every execution's intermediate dnsResult tuple is queryable and
    // matches the ground truth's partial tree.
    let ctx = QueryCtx::from_runtime(&rt);
    let mut checked = 0;
    for out in rt.outputs() {
        // Reconstruct the expected dnsResult from the reply.
        let full = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        let dns_result = full.child().expect("reply derives from dnsResult").output();
        let res = query_advanced(&ctx, &rt.recorder().primary, dns_result, &out.evid)
            .unwrap_or_else(|e| panic!("query for {dns_result} failed: {e}"));
        let want = rt
            .recorder()
            .shadow
            .tree_for_tuple(dns_result)
            .expect("ground truth has the partial tree");
        assert!(res.tree.equivalent(&want) && res.tree.output() == want.output());
        assert_eq!(res.tree.event().evid(), out.evid);
        checked += 1;
    }
    assert_eq!(checked, 12);
}

#[test]
fn interest_rejects_unknown_relations() {
    use dpc::apps::forwarding;
    let builds = |rels: [&str; 1]| {
        forwarding::runtime_builder(topo::star(3, Link::STUB_STUB))
            .interest(rels)
            .build()
    };
    assert!(builds(["recv"]).is_ok());
    assert!(builds(["packet"]).is_ok());
    assert!(builds(["route"]).is_err()); // slow, not derived
    assert!(builds(["nosuch"]).is_err());
}

/// The Section 6.1.2 bandwidth claim: with 500-byte payloads, provenance
/// maintenance metadata is a small fraction of the traffic for all
/// schemes.
#[test]
fn forwarding_bandwidth_overhead_is_small() {
    let mut rng = SeededRng::seed_from_u64(3);
    let ts = topo::transit_stub(&mut rng, &topo::TransitStubParams::default());
    let pairs = random_pairs(&mut rng, &ts.stub, 5);

    let base = {
        let mut rt = forwarding::make_runtime(ts.net.clone(), NoopRecorder);
        forwarding::install_routes_for_pairs(&mut rt, &pairs).unwrap();
        rt.clear_stats();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            for k in 0..10u64 {
                rt.inject(forwarding::packet(
                    s,
                    s,
                    d,
                    forwarding::payload(i as u64 * 100 + k),
                ))
                .unwrap();
            }
        }
        rt.run().unwrap();
        rt.stats().total_bytes()
    };
    let adv = {
        let keys = equivalence_keys(&programs::packet_forwarding());
        let mut rt = forwarding::make_runtime(ts.net.clone(), AdvancedRecorder::new(100, keys));
        forwarding::install_routes_for_pairs(&mut rt, &pairs).unwrap();
        rt.clear_stats();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            for k in 0..10u64 {
                rt.inject(forwarding::packet(
                    s,
                    s,
                    d,
                    forwarding::payload(i as u64 * 100 + k),
                ))
                .unwrap();
            }
        }
        rt.run().unwrap();
        rt.stats().total_bytes()
    };
    let overhead = adv as f64 / base as f64;
    assert!(
        overhead < 1.15,
        "advanced adds {:.1}% to uninstrumented traffic",
        (overhead - 1.0) * 100.0
    );
}
