//! Reproduces the paper's worked examples — Tables 1-4 — on the Figure 2
//! deployment (three nodes in a line; the paper's n1,n2,n3 are our
//! n0,n1,n2).

use dpc::core::{advanced::advanced_rid, exspan::exspan_rid};
use dpc::netsim::topo;
use dpc::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn deploy<R: ProvRecorder>(rec: R) -> Runtime<R> {
    let net = topo::line(3, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, rec);
    rt.install(forwarding::route(n(0), n(2), n(1))).unwrap();
    rt.install(forwarding::route(n(1), n(2), n(2))).unwrap();
    rt
}

fn pkt(loc: u32, payload: &str) -> Tuple {
    forwarding::packet(n(loc), n(0), n(2), payload)
}

/// Table 1: the ExSPAN prov/ruleExec tables for Figure 3's tree.
#[test]
fn table1_exspan_layout() {
    let mut rt = deploy(ExspanRecorder::new(3));
    rt.inject(pkt(0, "data")).unwrap();
    rt.run().unwrap();
    let rec = rt.recorder();

    // Six prov rows, matching Table 1 row for row.
    // vid1 route(@n0,..), vid2 packet(@n0,..): base rows at n0.
    for t in [forwarding::route(n(0), n(2), n(1)), pkt(0, "data")] {
        let row = rec.prov_row(n(0), &t.vid()).expect("prov row exists");
        assert_eq!(row.rid, None, "{t} is a base tuple");
    }
    // vid3 route(@n1,..) base; vid4 packet(@n1,..) derived by rid1@n0.
    let p_mid = rec.prov_row(n(1), &pkt(1, "data").vid()).unwrap();
    let rid1 = exspan_rid(
        "r1",
        n(0),
        &[
            pkt(0, "data").vid(),
            forwarding::route(n(0), n(2), n(1)).vid(),
        ],
    );
    assert_eq!(p_mid.rid, Some(rid1));
    assert_eq!(p_mid.rloc, Some(n(0)));
    // vid5 packet(@n2,..) derived by rid2@n1; vid6 recv derived by rid3@n2.
    let rid2 = exspan_rid(
        "r1",
        n(1),
        &[
            pkt(1, "data").vid(),
            forwarding::route(n(1), n(2), n(2)).vid(),
        ],
    );
    let p_last = rec.prov_row(n(2), &pkt(2, "data").vid()).unwrap();
    assert_eq!(p_last.rid, Some(rid2));
    let recv = forwarding::recv(n(2), n(0), n(2), "data");
    let rid3 = exspan_rid("r2", n(2), &[pkt(2, "data").vid()]);
    let p_recv = rec.prov_row(n(2), &recv.vid()).unwrap();
    assert_eq!(p_recv.rid, Some(rid3));
    assert_eq!(p_recv.rloc, Some(n(2)));

    // Three ruleExec rows: rid1@n0, rid2@n1, rid3@n2, with child vids.
    let re1 = rec.rule_exec(n(0), &rid1).unwrap();
    assert_eq!(re1.rule, "r1");
    assert_eq!(re1.vids.len(), 2);
    let re3 = rec.rule_exec(n(2), &rid3).unwrap();
    assert_eq!(re3.rule, "r2");
    assert_eq!(re3.vids, vec![pkt(2, "data").vid()]);
}

/// Table 2: the Basic layout — prov holds only the recv row; ruleExec
/// rows chain via (NLoc, NRID) and drop intermediate event vids.
#[test]
fn table2_basic_layout() {
    let mut rt = deploy(BasicRecorder::new(3));
    rt.inject(pkt(0, "data")).unwrap();
    rt.run().unwrap();
    let rec = rt.recorder();

    let recv = forwarding::recv(n(2), n(0), n(2), "data");
    // prov: exactly the output row (one row in the whole network).
    let totals: usize = (0..3).map(|i| rec.row_counts(n(i)).0).sum();
    assert_eq!(totals, 1);
    let pr = rec.prov_row(n(2), &recv.vid()).unwrap();

    // The chain: rid3@n2 -> rid2@n1 -> rid1@n0 -> NULL.
    let r3 = rec.rule_exec(pr.rloc.unwrap(), &pr.rid.unwrap()).unwrap();
    assert_eq!((r3.rule.as_str(), r3.vids.len()), ("r2", 0));
    let (l2, rid2) = r3.next.unwrap();
    let r2 = rec.rule_exec(l2, &rid2).unwrap();
    // Mid-chain rows hold only the slow vid (Table 2's rid2 row).
    assert_eq!(r2.vids, vec![forwarding::route(n(1), n(2), n(2)).vid()]);
    let (l1, rid1) = r2.next.unwrap();
    let r1 = rec.rule_exec(l1, &rid1).unwrap();
    assert_eq!(r1.next, None);
    // The tail keeps (vid1, vid2): the input event and its route.
    assert_eq!(r1.vids.len(), 2);
    assert!(r1.vids.contains(&pkt(0, "data").vid()));
    assert!(r1.vids.contains(&forwarding::route(n(0), n(2), n(1)).vid()));
}

/// Table 3: the Advanced layout after Figure 6's two packets — one shared
/// ruleExec chain, two prov rows with distinct EVIDs referencing it.
#[test]
fn table3_advanced_layout() {
    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut rt = deploy(AdvancedRecorder::new(3, keys));
    rt.inject(pkt(0, "data")).unwrap();
    rt.inject(pkt(0, "url")).unwrap();
    rt.run().unwrap();
    let rec = rt.recorder();

    // ruleExec: exactly one row per node (the shared tree).
    for i in 0..3 {
        assert_eq!(rec.row_counts(n(i)).1, 1, "node n{i}");
    }
    // prov: two rows at n2, one per packet, with the packets' evids, both
    // referencing the same (RLoc, RID).
    assert_eq!(rec.row_counts(n(2)).0, 2);
    let recv_d = forwarding::recv(n(2), n(0), n(2), "data");
    let recv_u = forwarding::recv(n(2), n(0), n(2), "url");
    let (vd, ed) = (recv_d.vid(), pkt(0, "data").evid());
    let (vu, eu) = (recv_u.vid(), pkt(0, "url").evid());
    let pd = rec.prov_row(n(2), &vd, &ed).unwrap();
    let pu = rec.prov_row(n(2), &vu, &eu).unwrap();
    assert_eq!((pd.rloc, pd.rid), (pu.rloc, pu.rid));
    assert_ne!(pd.evid, pu.evid);

    // Advanced rids hash rule + slow vids + chain (vids exclude events).
    let rid_tail = advanced_rid("r1", &[forwarding::route(n(0), n(2), n(1)).vid()], None);
    let v = rec.rule_exec(n(0), &rid_tail).expect("tail row exists");
    assert_eq!(v.next, None);
}

/// Table 4: the inter-class split — a packet entering mid-path shares the
/// concrete rule-execution nodes of the longer path's tree.
#[test]
fn table4_inter_class_layout() {
    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut rt = deploy(AdvancedRecorder::with_inter_class(3, keys));
    rt.inject(pkt(0, "data")).unwrap();
    rt.run().unwrap();
    // Section 5.4's example: packet(@n1, n1, n2, "ack") — enters at n1.
    rt.inject(forwarding::packet(n(1), n(1), n(2), "ack"))
        .unwrap();
    rt.run().unwrap();
    let rec = rt.recorder();

    // n1: one concrete node (r1 with the same route tuple), two links.
    assert_eq!(rec.node_row_count(n(1)), 1);
    assert_eq!(rec.row_counts(n(1)).1, 2);
    // n2: r2 has no slow tuples — shared concrete node, two links.
    assert_eq!(rec.node_row_count(n(2)), 1);
    assert_eq!(rec.row_counts(n(2)).1, 2);
    // Both executions remain individually queryable.
    let ctx = QueryCtx::from_runtime(&rt);
    for out in rt.outputs() {
        let res = query_advanced(&ctx, rt.recorder(), &out.tuple, &out.evid).unwrap();
        assert_eq!(res.tree.output(), &out.tuple);
    }
}

/// The worked example of Section 5.1: "data" and "url" packets produce
/// equivalent trees; a packet with a different destination does not.
#[test]
fn section51_tree_equivalence() {
    let mut rt = deploy(GroundTruthRecorder::new());
    rt.install(forwarding::route(n(0), n(1), n(1))).unwrap();
    rt.inject(pkt(0, "data")).unwrap();
    rt.inject(pkt(0, "url")).unwrap();
    rt.inject(forwarding::packet(n(0), n(0), n(1), "data"))
        .unwrap();
    rt.run().unwrap();
    let trees = rt.recorder().trees();
    assert_eq!(trees.len(), 3);
    let tree_of = |ev: &Tuple| {
        trees
            .iter()
            .find(|(_, e, _)| *e == ev.evid())
            .map(|(_, _, t)| t)
            .expect("tree recorded")
    };
    let data = tree_of(&pkt(0, "data"));
    let url = tree_of(&pkt(0, "url"));
    let short = tree_of(&forwarding::packet(n(0), n(0), n(1), "data"));
    assert!(data.equivalent(url));
    assert!(!data.equivalent(short));
}

/// Per-node storage after the Table 1-3 workload (Figure 6's two
/// packets) under any recorder.
fn storage_after_two_packets<R: ProvRecorder>(rec: R) -> Vec<usize> {
    let mut rt = deploy(rec);
    rt.inject(pkt(0, "data")).unwrap();
    rt.run().unwrap();
    rt.inject(pkt(0, "url")).unwrap();
    rt.run().unwrap();
    (0..3u32).map(|i| rt.recorder().storage_at(n(i))).collect()
}

/// The [`Scheme::recorder`] factory must be byte-identical to the
/// hand-constructed recorders on the Table 1-3 deployment — the factory
/// is pure plumbing, never a behavioral fork.
#[test]
fn scheme_factory_matches_hand_constructed_recorders() {
    let delp = programs::packet_forwarding();
    let keys = equivalence_keys(&delp);
    for scheme in Scheme::ALL {
        let via_factory = storage_after_two_packets(scheme.recorder(&delp, 3));
        let by_hand = match scheme {
            Scheme::Noop => storage_after_two_packets(NoopRecorder),
            Scheme::Exspan => storage_after_two_packets(ExspanRecorder::new(3)),
            Scheme::Basic => storage_after_two_packets(BasicRecorder::new(3)),
            Scheme::Advanced => storage_after_two_packets(AdvancedRecorder::new(3, keys.clone())),
            Scheme::AdvancedInterClass => {
                storage_after_two_packets(AdvancedRecorder::with_inter_class(3, keys.clone()))
            }
        };
        assert_eq!(via_factory, by_hand, "{scheme} diverged from hand-built");
        assert!(
            scheme == Scheme::Noop || via_factory.iter().sum::<usize>() > 0,
            "{scheme} stored nothing"
        );
    }
}
