//! Paper-scale runs, `#[ignore]`d by default — execute with
//! `cargo test --release --test paper_scale -- --ignored`.
//!
//! These use the paper's actual workload parameters (Section 6), so they
//! take minutes and, for ExSPAN, allocate in proportion to the paper's
//! gigabyte-scale storage numbers. The default test suite exercises the
//! same code paths at reduced scale.

use dpc::netsim::topo;
use dpc::prelude::*;
use dpc::workload::random_pairs;
use dpc_common::SeededRng;

/// Figure 8/9's Advanced configuration: 100 pairs x 100 pkt/s x 100 s.
/// (Advanced only — its storage stays bounded by the pair count; running
/// ExSPAN at this scale allocates ~10 GB, exactly as the paper reports.)
#[test]
#[ignore = "paper-scale: ~1M packets, minutes of runtime"]
fn advanced_at_paper_scale_stays_compressed() {
    let mut rng = SeededRng::seed_from_u64(42);
    let ts = topo::transit_stub(&mut rng, &topo::TransitStubParams::default());
    let pairs = random_pairs(&mut rng, &ts.stub, 100);
    let keys = equivalence_keys(&programs::packet_forwarding());
    // Lean mode: count outputs and measure storage without materializing
    // a million 500-byte tuples across the network.
    let mut rt = forwarding::runtime_builder(ts.net)
        .recorder(AdvancedRecorder::new(100, keys))
        .config(dpc::engine::RuntimeConfig {
            retain_tuples: false,
            record_outputs: false,
            ..Default::default()
        })
        .build()
        .unwrap();
    forwarding::install_routes_for_pairs(&mut rt, &pairs).unwrap();

    // Inject in one-second waves to bound the pending queue.
    let mut seq = 0u64;
    for sec in 0..100u64 {
        for k in 0..100u64 {
            // 100 pkt/s per pair for 100 s.
            for &(s, d) in &pairs {
                rt.inject_at(
                    forwarding::packet(s, s, d, forwarding::payload(seq)),
                    SimTime::from_millis(sec * 1000 + k * 10),
                )
                .unwrap();
                seq += 1;
            }
        }
        rt.run_until(SimTime::from_secs(sec + 1)).unwrap();
    }
    rt.run().unwrap();
    assert_eq!(rt.outputs_count(), 1_000_000);
    assert_eq!(rt.recorder().hmap_misses(), 0);

    // The ruleExec tables hold one shared tree per pair regardless of the
    // million packets; prov rows grow per packet but stay small.
    let total: usize = rt.net().nodes().map(|n| rt.recorder().storage_at(n)).sum();
    // 1M prov rows x 68 B ~ 68 MB; the shared trees are noise on top.
    assert!(total < 120_000_000, "advanced storage {total}");
}

/// Figure 13/16's DNS configuration: 1000 req/s for 100 s.
#[test]
#[ignore = "paper-scale: 100k requests, minutes of runtime"]
fn dns_advanced_at_paper_scale() {
    use dpc::apps::dns;
    use dpc::workload::Zipf;
    let mut rng = SeededRng::seed_from_u64(42);
    let tree = topo::tree(&mut rng, &topo::TreeParams::default());
    let keys = equivalence_keys(&programs::dns_resolution());
    let mut rt = dns::runtime_builder(&tree)
        .recorder(AdvancedRecorder::new(100, keys))
        .config(dpc::engine::RuntimeConfig {
            retain_tuples: false,
            record_outputs: false,
            ..Default::default()
        })
        .build()
        .unwrap();
    let dep = dns::deploy(&mut rt, &tree, 38, &[tree.root]).unwrap();
    let zipf = Zipf::new(38, 1.0);
    for wave in 0..100u64 {
        for i in 0..1000u64 {
            let url = dep.urls[zipf.sample(&mut rng)].0.clone();
            rt.inject_at(
                dns::url_event(tree.root, url, (wave * 1000 + i) as i64),
                SimTime::from_millis(wave * 1000 + i),
            )
            .unwrap();
        }
        rt.run_until(SimTime::from_secs(wave + 1)).unwrap();
    }
    rt.run().unwrap();
    assert_eq!(rt.outputs_count(), 100_000);
    assert_eq!(rt.recorder().hmap_misses(), 0);
    // 38 equivalence classes bound the ruleExec tables.
    let rule_rows: usize = rt
        .net()
        .nodes()
        .map(|n| rt.recorder().row_counts(n).1)
        .sum();
    assert!(rule_rows < 38 * 30, "rule rows {rule_rows}");
}
