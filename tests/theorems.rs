//! Executable counterparts of the paper's correctness results:
//!
//! * Theorem 1 — events equivalent w.r.t. the equivalence keys generate
//!   equivalent provenance trees.
//! * Theorem 3 — the compressed tables encode exactly the trees semi-naïve
//!   evaluation produces (here: the ground-truth recorder).
//! * Theorem 5 — the query algorithm returns the correct full tree for
//!   every stored output.
//!
//! Randomized topologies and workloads (seeded in-tree PRNG, so every
//! case reproduces) are driven through all schemes and compared against
//! the ground truth.

use dpc::netsim::topo;
use dpc::prelude::*;
use dpc_common::{Rng, SeededRng};

const CASES: u64 = 24;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Build a line runtime with routes from every node toward every node.
fn full_line<R: ProvRecorder>(len: usize, rec: R) -> Runtime<R> {
    let net = topo::line(len, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, rec);
    for s in 0..len as u32 {
        for d in 0..len as u32 {
            if s == d {
                continue;
            }
            let next = if d > s { s + 1 } else { s - 1 };
            rt.install(forwarding::route(n(s), n(d), n(next))).unwrap();
        }
    }
    rt
}

fn random_payload(rng: &mut SeededRng) -> String {
    let len = rng.random_range(1..13u64) as usize;
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26u32) as u8) as char)
        .collect()
}

/// One randomized packet: (entry node, destination, payload) with
/// `src != dst`.
fn random_packet(rng: &mut SeededRng, len: u32) -> (u32, u32, String) {
    let src = rng.random_range(0..len);
    let dst = loop {
        let d = rng.random_range(0..len);
        if d != src {
            break d;
        }
    };
    (src, dst, random_payload(rng))
}

/// Theorem 1: equal key valuations give equivalent trees; different
/// destinations (a key attribute) give non-equivalent trees.
#[test]
fn theorem1_key_equality_implies_tree_equivalence() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x21_000 + case);
        let (src, dst, payload) = random_packet(&mut rng, 6);
        let other_payload = random_payload(&mut rng);
        let mut rt = full_line(6, GroundTruthRecorder::new());
        let a = forwarding::packet(n(src), n(src), n(dst), payload.clone());
        let b = forwarding::packet(n(src), n(src), n(dst), format!("{other_payload}!"));
        rt.inject(a.clone()).unwrap();
        rt.run().unwrap();
        rt.inject(b.clone()).unwrap();
        rt.run().unwrap();
        let keys = equivalence_keys(&programs::packet_forwarding());
        assert!(keys.equivalent(&a, &b).unwrap());
        let trees = rt.recorder().trees();
        assert_eq!(trees.len(), 2);
        assert!(trees[0].2.equivalent(&trees[1].2));
    }
}

/// Theorems 3+5 for Advanced: every output's queried tree equals the
/// ground truth, over random multi-packet workloads.
#[test]
fn theorem3_and_5_advanced_round_trip() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x22_000 + case);
        let count = rng.random_range(1..12u64) as usize;
        let packets: Vec<_> = (0..count).map(|_| random_packet(&mut rng, 5)).collect();
        let keys = equivalence_keys(&programs::packet_forwarding());
        let rec = TeeRecorder::new(AdvancedRecorder::new(5, keys), GroundTruthRecorder::new());
        let mut rt = full_line(5, rec);
        for (s, d, p) in &packets {
            rt.inject(forwarding::packet(n(*s), n(*s), n(*d), p.clone()))
                .unwrap();
            rt.run().unwrap();
        }
        assert_eq!(rt.outputs().len(), packets.len());
        assert_eq!(rt.recorder().primary.hmap_misses(), 0);
        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let got = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid)
                .expect("queryable");
            let want = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .expect("ground truth recorded");
            assert_eq!(&got.tree, want);
        }
    }
}

/// The same round trip for the inter-class layout (Section 5.4).
#[test]
fn theorem3_and_5_inter_class_round_trip() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x23_000 + case);
        let count = rng.random_range(1..10u64) as usize;
        let packets: Vec<_> = (0..count).map(|_| random_packet(&mut rng, 5)).collect();
        let keys = equivalence_keys(&programs::packet_forwarding());
        let rec = TeeRecorder::new(
            AdvancedRecorder::with_inter_class(5, keys),
            GroundTruthRecorder::new(),
        );
        let mut rt = full_line(5, rec);
        for (s, d, p) in &packets {
            rt.inject(forwarding::packet(n(*s), n(*s), n(*d), p.clone()))
                .unwrap();
            rt.run().unwrap();
        }
        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let got = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid)
                .expect("queryable");
            let want = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .expect("ground truth recorded");
            assert_eq!(&got.tree, want);
        }
    }
}

/// All three schemes agree with each other (and the oracle) on the
/// reconstructed tree of every output.
#[test]
fn schemes_agree_on_trees() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x24_000 + case);
        let count = rng.random_range(1..8u64) as usize;
        let packets: Vec<_> = (0..count).map(|_| random_packet(&mut rng, 4)).collect();
        let keys = equivalence_keys(&programs::packet_forwarding());
        let mut rt_e = full_line(
            4,
            TeeRecorder::new(ExspanRecorder::new(4), GroundTruthRecorder::new()),
        );
        let mut rt_b = full_line(4, BasicRecorder::new(4));
        let mut rt_a = full_line(4, AdvancedRecorder::new(4, keys));
        for (s, d, p) in &packets {
            for inj in [
                rt_e.inject(forwarding::packet(n(*s), n(*s), n(*d), p.clone())),
                rt_b.inject(forwarding::packet(n(*s), n(*s), n(*d), p.clone())),
                rt_a.inject(forwarding::packet(n(*s), n(*s), n(*d), p.clone())),
            ] {
                inj.unwrap();
            }
            rt_e.run().unwrap();
            rt_b.run().unwrap();
            rt_a.run().unwrap();
        }
        let ctx_e = QueryCtx::from_runtime(&rt_e);
        let ctx_b = QueryCtx::from_runtime(&rt_b);
        let ctx_a = QueryCtx::from_runtime(&rt_a);
        for (oe, (ob, oa)) in rt_e
            .outputs()
            .iter()
            .zip(rt_b.outputs().iter().zip(rt_a.outputs()))
        {
            let te = query_exspan(&ctx_e, &rt_e.recorder().primary, &oe.tuple)
                .unwrap()
                .tree;
            let tb = query_basic(&ctx_b, rt_b.recorder(), &ob.tuple)
                .unwrap()
                .tree;
            let ta = query_advanced(&ctx_a, rt_a.recorder(), &oa.tuple, &oa.evid)
                .unwrap()
                .tree;
            let truth = rt_e
                .recorder()
                .shadow
                .tree_for(&oe.tuple, &oe.evid)
                .unwrap();
            assert_eq!(&te, truth);
            assert_eq!(&tb, truth);
            assert_eq!(&ta, truth);
        }
    }
}

/// Key-hash soundness: events agreeing on keys hash equal; events
/// differing on a key attribute hash differently.
#[test]
fn key_hash_respects_definition2() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x25_000 + case);
        let (src, dst, p1) = random_packet(&mut rng, 6);
        let p2 = random_payload(&mut rng);
        let other_dst = rng.random_range(0..6u32);
        let keys = equivalence_keys(&programs::packet_forwarding());
        let a = forwarding::packet(n(src), n(src), n(dst), p1);
        let b = forwarding::packet(n(src), n(src), n(dst), p2);
        assert_eq!(keys.hash(&a).unwrap(), keys.hash(&b).unwrap());
        if other_dst != dst {
            let c = forwarding::packet(n(src), n(src), n(other_dst), "x");
            assert_ne!(keys.hash(&a).unwrap(), keys.hash(&c).unwrap());
        }
    }
}

/// Theorems 3+5 on the DNS application, against the ground truth.
#[test]
fn dns_advanced_round_trip() {
    use dpc::apps::dns;
    let mut rng = SeededRng::seed_from_u64(17);
    let tree = topo::tree(
        &mut rng,
        &topo::TreeParams {
            nodes: 40,
            ..topo::TreeParams::default()
        },
    );
    let keys = equivalence_keys(&programs::dns_resolution());
    let rec = TeeRecorder::new(AdvancedRecorder::new(40, keys), GroundTruthRecorder::new());
    let mut rt = dns::make_runtime(&tree, rec);
    let dep = dns::deploy(&mut rt, &tree, 12, &[tree.root]).unwrap();
    // Every URL twice: second resolution of each is compressed.
    for (i, (url, _, _)) in dep.urls.iter().enumerate() {
        rt.inject(dns::url_event(tree.root, url.clone(), i as i64))
            .unwrap();
        rt.run().unwrap();
        rt.inject(dns::url_event(tree.root, url.clone(), 1000 + i as i64))
            .unwrap();
        rt.run().unwrap();
    }
    assert_eq!(rt.outputs().len(), 24);
    assert_eq!(rt.recorder().primary.hmap_misses(), 0);
    let ctx = QueryCtx::from_runtime(&rt);
    for out in rt.outputs() {
        let got =
            query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).expect("queryable");
        let want = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .expect("ground truth recorded");
        assert_eq!(&got.tree, want, "output {}", out.tuple);
    }
}

/// Section 5.5: after a slow-table update, pre- and post-update executions
/// of the same equivalence class are both queryable, with their own trees.
#[test]
fn updates_preserve_history_and_capture_new_paths() {
    let keys = equivalence_keys(&programs::packet_forwarding());
    let rec = TeeRecorder::new(AdvancedRecorder::new(4, keys), GroundTruthRecorder::new());
    let net = {
        let mut net = topo::line(3, Link::STUB_STUB);
        let n3 = net.add_node();
        net.add_link(n(0), n3, Link::STUB_STUB).unwrap();
        net.add_link(n3, n(2), Link::STUB_STUB).unwrap();
        net
    };
    let mut rt = Runtime::new(programs::packet_forwarding(), net, rec);
    rt.install(forwarding::route(n(0), n(2), n(1))).unwrap();
    rt.install(forwarding::route(n(1), n(2), n(2))).unwrap();
    rt.install(forwarding::route(n(3), n(2), n(2))).unwrap();

    rt.inject(forwarding::packet(n(0), n(0), n(2), "before"))
        .unwrap();
    rt.run().unwrap();
    rt.delete_slow_at(forwarding::route(n(0), n(2), n(1)), rt.now())
        .unwrap();
    rt.update_slow_at(forwarding::route(n(0), n(2), n(3)), rt.now())
        .unwrap();
    rt.run().unwrap();
    rt.inject(forwarding::packet(n(0), n(0), n(2), "after"))
        .unwrap();
    rt.run().unwrap();

    assert_eq!(rt.outputs().len(), 2);
    assert_eq!(rt.recorder().primary.hmap_misses(), 0);
    let ctx = QueryCtx::from_runtime(&rt);
    let mut trees = Vec::new();
    for out in rt.outputs() {
        let got = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).unwrap();
        let want = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        assert_eq!(&got.tree, want);
        trees.push(got.tree);
    }
    // The two trees route through different intermediate nodes.
    assert!(!trees[0].equivalent(&trees[1]));
    assert!(trees[0].render().contains("@n1"));
    assert!(trees[1].render().contains("@n3"));
}
