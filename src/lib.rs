#![warn(missing_docs)]

//! # Distributed Provenance Compression
//!
//! A from-scratch Rust reproduction of *Distributed Provenance
//! Compression* (SIGMOD 2017): an online, equivalence-based compression
//! scheme for distributed network provenance, together with every
//! substrate it depends on — an NDlog/DELP language frontend with static
//! analysis, a declarative networking engine, and a discrete-event network
//! simulator.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`common`] | `dpc-common` | values, tuples, SHA-1 digests, storage sizing |
//! | [`ndlog`] | `dpc-ndlog` | NDlog parser, DELP validation, dependency graph, `GetEquiKeys` |
//! | [`netsim`] | `dpc-netsim` | simulated clock, links, topologies, traffic stats |
//! | [`engine`] | `dpc-engine` | per-node DBs, rule evaluation, pipelined semi-naïve runtime |
//! | [`core`] | `dpc-core` | ExSPAN/Basic/Advanced recorders, inter-class compression, distributed query |
//! | [`apps`] | `dpc-apps` | packet forwarding, DNS, DHCP, ARP deployments |
//! | [`workload`] | `dpc-workload` | pair/stream/Zipf generators, CDFs |
//!
//! ## Quickstart
//!
//! ```
//! use dpc::prelude::*;
//!
//! // Figure 2's deployment: three nodes in a line, routes towards n2.
//! let net = dpc::netsim::topo::line(3, Link::STUB_STUB);
//! let keys = equivalence_keys(&programs::packet_forwarding());
//! let mut rt = forwarding::make_runtime(net, AdvancedRecorder::new(3, keys));
//! forwarding::install_routes_for_pairs(&mut rt, &[(NodeId(0), NodeId(2))]).unwrap();
//!
//! // Two packets of the same equivalence class (Figure 6).
//! rt.inject(forwarding::packet(NodeId(0), NodeId(0), NodeId(2), "data")).unwrap();
//! rt.inject(forwarding::packet(NodeId(0), NodeId(0), NodeId(2), "url")).unwrap();
//! rt.run().unwrap();
//!
//! // Query the second packet's provenance: the tree is reconstructed from
//! // the shared compressed representation.
//! let out = rt.outputs()[1].clone();
//! let ctx = QueryCtx::from_runtime(&rt);
//! let res = query_advanced(&ctx, rt.recorder(), &out.tuple, &out.evid).unwrap();
//! assert_eq!(res.tree.output(), &out.tuple);
//! ```

pub use dpc_apps as apps;
pub use dpc_common as common;
pub use dpc_core as core;
pub use dpc_engine as engine;
pub use dpc_ndlog as ndlog;
pub use dpc_netsim as netsim;
pub use dpc_telemetry as telemetry;
pub use dpc_workload as workload;

/// The names most programs need.
pub mod prelude {
    pub use dpc_apps::{arp, dhcp, dns, firewall, forwarding};
    pub use dpc_common::{EvId, NodeId, Rid, StorageSize, Tuple, Value, Vid};
    pub use dpc_core::{
        query_advanced, query_basic, query_exspan, AdvancedRecorder, BasicRecorder, ExspanRecorder,
        GroundTruthRecorder, ProvTree, QueryCtx, Scheme,
    };
    pub use dpc_engine::{NoopRecorder, ProvRecorder, Runtime, RuntimeBuilder, TeeRecorder};
    pub use dpc_ndlog::{equivalence_keys, parse_program, programs, Delp};
    pub use dpc_netsim::{Link, Network, SimTime};
    pub use dpc_telemetry::{Telemetry, TelemetryHandle};
}
