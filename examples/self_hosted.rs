//! The compile-time rewrite engine (Section 6) end to end: a DELP is
//! rewritten into a plain NDlog program that maintains — and compresses —
//! its own provenance, using only the language plus the `f_vid`/`f_arid`/
//! `f_existflag` user functions. No recorder is attached; the provenance
//! rows come out as ordinary derived tuples.
//!
//! Run with: `cargo run --example self_hosted`

use dpc::core::{register_advanced_fns, register_provenance_fns, selfhost};
use dpc::ndlog::rewrite::rewrite_advanced;
use dpc::netsim::topo;
use dpc::prelude::*;

fn main() {
    let delp = programs::packet_forwarding();
    let keys = equivalence_keys(&delp);
    let rewritten_src = rewrite_advanced(&delp, &keys);
    println!("== rewritten program (self-hosting Advanced compression) ==");
    println!("{rewritten_src}");

    let rewritten = Delp::new_relaxed(rewritten_src).expect("rewrite output validates");
    let mut builder = Runtime::builder(rewritten, topo::line(3, Link::STUB_STUB));
    register_provenance_fns(builder.fns_mut());
    register_advanced_fns(builder.fns_mut());
    let mut rt = builder.build().expect("rewritten program builds");
    rt.install(forwarding::route(NodeId(0), NodeId(2), NodeId(1)))
        .expect("install");
    rt.install(forwarding::route(NodeId(1), NodeId(2), NodeId(2)))
        .expect("install");

    // Figure 6's two packets, extended with the NULL meta reference.
    for payload in ["data", "url"] {
        let pkt = forwarding::packet(NodeId(0), NodeId(0), NodeId(2), payload);
        rt.inject(selfhost::extend_input_event_advanced(&pkt))
            .expect("inject");
        rt.run().expect("run");
    }

    println!("== derived tuples ==");
    let mut exec_rows = 0;
    for out in rt.outputs() {
        if out.tuple.rel().starts_with("ruleExecA_") {
            exec_rows += 1;
        }
        println!("  {}", out.tuple);
    }
    println!(
        "\n{exec_rows} ruleExec rows for 2 packets — the second execution was\n\
         compressed by the program itself (its recv carries Flag = true and\n\
         the same shared (PLoc, PRid) reference as the first's)."
    );
}
