//! Cross-program provenance compression (the paper's Section 8 future
//! work): two protocols sharing the forwarding rule `r1` — packet
//! delivery and a mirroring/telemetry variant — store their rule
//! executions in one shared node store, so the shared rule's provenance
//! is kept once.
//!
//! Run with: `cargo run --example cross_program`

use dpc::core::{CrossProgramRecorder, SharedNodeStore};
use dpc::netsim::topo;
use dpc::prelude::*;

const MIRROR: &str = r#"
    r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
    r9 logged(@L, S, D, DT) :- packet(@L, S, D, DT), D == L.
"#;

fn main() {
    let delp_fwd = programs::packet_forwarding();
    let delp_mir =
        Delp::new(parse_program(MIRROR).expect("mirror parses")).expect("mirror is a valid DELP");
    let keys_fwd = equivalence_keys(&delp_fwd);
    let keys_mir = equivalence_keys(&delp_mir);

    let net = topo::line(5, Link::STUB_STUB);
    let store = SharedNodeStore::new(5);
    let mut rt_fwd = Runtime::builder(delp_fwd, net.clone())
        .recorder(CrossProgramRecorder::new(keys_fwd, store.clone()))
        .build()
        .expect("forwarding program builds");
    let mut rt_mir = Runtime::builder(delp_mir, net)
        .recorder(CrossProgramRecorder::new(keys_mir, store.clone()))
        .build()
        .expect("mirror program builds");
    for rt in [&mut rt_fwd, &mut rt_mir] {
        for i in 0..4u32 {
            rt.install(forwarding::route(NodeId(i), NodeId(4), NodeId(i + 1)))
                .expect("install route");
        }
    }

    // The forwarding protocol carries a packet end to end...
    rt_fwd
        .inject(forwarding::packet(NodeId(0), NodeId(0), NodeId(4), "data"))
        .expect("inject");
    rt_fwd.run().expect("run forwarding");
    let after_fwd = store.total_storage();
    println!("after forwarding run: shared store holds {after_fwd} B");

    // ...then the mirror protocol sends along the same path: its four r1
    // executions are already in the store; only r9's node is new.
    rt_mir
        .inject(forwarding::packet(NodeId(0), NodeId(0), NodeId(4), "data"))
        .expect("inject");
    rt_mir.run().expect("run mirror");
    let after_mir = store.total_storage();
    println!(
        "after mirror run:     shared store holds {after_mir} B (+{} B)",
        after_mir - after_fwd
    );
    for i in 0..5u32 {
        println!(
            "  n{i}: {} concrete rule-execution nodes, {} per-tree links",
            store.node_rows(NodeId(i)),
            store.link_rows(NodeId(i)),
        );
    }

    // Both protocols' provenance stays independently queryable.
    for (name, rt) in [("forwarding", &rt_fwd), ("mirror", &rt_mir)] {
        let out = rt.outputs()[0].clone();
        let ctx = QueryCtx::from_runtime(rt);
        let res = query_advanced(&ctx, rt.recorder(), &out.tuple, &out.evid).expect("queryable");
        println!("\n[{name}] provenance of {}:\n{}", out.tuple, res.tree);
    }
}
