//! Packet forwarding on the paper's 100-node transit-stub topology:
//! runs the same traffic under all three maintenance schemes and compares
//! storage, bandwidth and query latency — a miniature of Section 6.1.
//!
//! Run with: `cargo run --release --example packet_forwarding`

use dpc::netsim::topo;
use dpc::prelude::*;
use dpc::workload::{mb, random_pairs, Cdf};
use dpc_common::SeededRng;

const PAIRS: usize = 40;
const PACKETS_PER_PAIR: usize = 25;

fn build_pairs(seed: u64) -> (dpc::netsim::Network, Vec<(NodeId, NodeId)>) {
    let mut rng = SeededRng::seed_from_u64(seed);
    let ts = topo::transit_stub(&mut rng, &topo::TransitStubParams::default());
    let pairs = random_pairs(&mut rng, &ts.stub, PAIRS);
    (ts.net, pairs)
}

fn run<R: ProvRecorder>(recorder: R, seed: u64) -> (Runtime<R>, Vec<(NodeId, NodeId)>) {
    let (net, pairs) = build_pairs(seed);
    let mut rt = forwarding::runtime_builder(net)
        .recorder(recorder)
        .build()
        .expect("the forwarding program builds");
    forwarding::install_routes_for_pairs(&mut rt, &pairs).expect("connected topology");
    rt.clear_stats();
    let mut seq = 0u64;
    for k in 0..PACKETS_PER_PAIR {
        for &(s, d) in &pairs {
            rt.inject_at(
                forwarding::packet(s, s, d, forwarding::payload(seq)),
                SimTime::from_millis((k as u64) * 100),
            )
            .expect("valid packet");
            seq += 1;
        }
    }
    rt.run().expect("run to fixpoint");
    (rt, pairs)
}

fn total_storage<R: ProvRecorder>(rt: &Runtime<R>) -> usize {
    rt.net().nodes().map(|n| rt.recorder().storage_at(n)).sum()
}

fn main() {
    let seed = 42;
    println!(
        "transit-stub 100 nodes, {PAIRS} pairs x {PACKETS_PER_PAIR} packets (500 B payloads)\n"
    );

    // ExSPAN baseline.
    let (rt_e, _) = run(ExspanRecorder::new(100), seed);
    // Basic optimization.
    let (rt_b, _) = run(BasicRecorder::new(100), seed);
    // Equivalence-based compression.
    let keys = equivalence_keys(&programs::packet_forwarding());
    let (rt_a, _) = run(AdvancedRecorder::new(100, keys), seed);

    println!(
        "{:<12} {:>14} {:>14} {:>12}",
        "scheme", "storage", "bandwidth", "outputs"
    );
    for (name, storage, traffic, outputs) in [
        (
            "ExSPAN",
            total_storage(&rt_e),
            rt_e.stats().total_bytes(),
            rt_e.outputs().len(),
        ),
        (
            "Basic",
            total_storage(&rt_b),
            rt_b.stats().total_bytes(),
            rt_b.outputs().len(),
        ),
        (
            "Advanced",
            total_storage(&rt_a),
            rt_a.stats().total_bytes(),
            rt_a.outputs().len(),
        ),
    ] {
        println!(
            "{name:<12} {:>11.2} MB {:>11.2} MB {outputs:>12}",
            mb(storage),
            mb(traffic as usize),
        );
    }

    // Query latency comparison over the same 20 outputs.
    let ctx_e = QueryCtx::from_runtime(&rt_e);
    let ctx_b = QueryCtx::from_runtime(&rt_b);
    let ctx_a = QueryCtx::from_runtime(&rt_a);
    let mut le = Vec::new();
    let mut lb = Vec::new();
    let mut la = Vec::new();
    for i in (0..rt_e.outputs().len()).step_by(rt_e.outputs().len() / 20) {
        let oe = &rt_e.outputs()[i];
        le.push(
            query_exspan(&ctx_e, rt_e.recorder(), &oe.tuple)
                .expect("queryable")
                .latency
                .as_millis_f64(),
        );
        let ob = &rt_b.outputs()[i];
        lb.push(
            query_basic(&ctx_b, rt_b.recorder(), &ob.tuple)
                .expect("queryable")
                .latency
                .as_millis_f64(),
        );
        let oa = &rt_a.outputs()[i];
        la.push(
            query_advanced(&ctx_a, rt_a.recorder(), &oa.tuple, &oa.evid)
                .expect("queryable")
                .latency
                .as_millis_f64(),
        );
    }
    println!("\nquery latency (ms):");
    for (name, lat) in [("ExSPAN", le), ("Basic", lb), ("Advanced", la)] {
        let cdf = Cdf::new(lat);
        println!(
            "{name:<12} median {:>8.1}   mean {:>8.1}   max {:>8.1}",
            cdf.median(),
            cdf.mean(),
            cdf.max()
        );
    }
}
