//! Recursive DNS resolution with compressed provenance — a miniature of
//! Section 6.2: a 100-server hierarchy, Zipfian requests over 38 URLs,
//! storage comparison across schemes, and a provenance query for one
//! resolution showing the full delegation chain.
//!
//! Run with: `cargo run --release --example dns_resolution`

use dpc::apps::dns;
use dpc::netsim::topo;
use dpc::prelude::*;
use dpc::workload::{mb, Zipf};
use dpc_common::SeededRng;

const SERVERS: usize = 100;
const URLS: usize = 38;
const REQUESTS: usize = 1500;

fn run<R: ProvRecorder>(recorder: R, seed: u64) -> (Runtime<R>, dns::DnsDeployment) {
    let mut rng = SeededRng::seed_from_u64(seed);
    let tree = topo::tree(
        &mut rng,
        &topo::TreeParams {
            nodes: SERVERS,
            ..topo::TreeParams::default()
        },
    );
    let mut rt = dns::runtime_builder(&tree)
        .recorder(recorder)
        .build()
        .expect("the DNS program builds");
    let client = tree.root;
    let dep = dns::deploy(&mut rt, &tree, URLS, &[client]).expect("deployable");
    rt.clear_stats();
    let zipf = Zipf::new(URLS, 1.0);
    for i in 0..REQUESTS {
        let url = dep.urls[zipf.sample(&mut rng)].0.clone();
        rt.inject_at(
            dns::url_event(client, url, i as i64),
            SimTime::from_millis(i as u64 * 5),
        )
        .expect("valid request");
    }
    rt.run().expect("run to fixpoint");
    (rt, dep)
}

fn total_storage<R: ProvRecorder>(rt: &Runtime<R>) -> usize {
    rt.net().nodes().map(|n| rt.recorder().storage_at(n)).sum()
}

fn main() {
    let seed = 7;
    println!("{SERVERS} nameservers, {URLS} URLs, {REQUESTS} Zipfian requests\n");

    let (rt_e, _) = run(ExspanRecorder::new(SERVERS), seed);
    let (rt_b, _) = run(BasicRecorder::new(SERVERS), seed);
    let keys = equivalence_keys(&programs::dns_resolution());
    let (rt_a, dep) = run(AdvancedRecorder::new(SERVERS, keys), seed);

    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "scheme", "storage", "bandwidth", "resolved"
    );
    for (name, s, t, o) in [
        (
            "ExSPAN",
            total_storage(&rt_e),
            rt_e.stats().total_bytes(),
            rt_e.outputs().len(),
        ),
        (
            "Basic",
            total_storage(&rt_b),
            rt_b.stats().total_bytes(),
            rt_b.outputs().len(),
        ),
        (
            "Advanced",
            total_storage(&rt_a),
            rt_a.stats().total_bytes(),
            rt_a.outputs().len(),
        ),
    ] {
        println!(
            "{name:<12} {:>11.3} MB {:>11.3} MB {o:>10}",
            mb(s),
            mb(t as usize)
        );
    }
    println!(
        "\nAdvanced bandwidth exceeds ExSPAN's here — DNS requests carry no\n\
         payload, so the tagged metadata is visible (Figure 15's effect).\n"
    );

    // Query the provenance of one resolution of the most popular URL.
    let (url, server, _ip) = dep.urls[0].clone();
    let out = rt_a
        .outputs()
        .iter()
        .find(|o| o.tuple.args()[1] == Value::str(url.clone()))
        .expect("the most popular URL certainly resolved")
        .clone();
    let ctx = QueryCtx::from_runtime(&rt_a);
    let res = query_advanced(&ctx, rt_a.recorder(), &out.tuple, &out.evid)
        .expect("stored output is queryable");
    println!(
        "provenance of {} (owner {server}, chain depth {}, latency {}):\n{}",
        out.tuple,
        res.tree.depth(),
        res.latency,
        res.tree
    );
}
