//! Updates to slow-changing tables (Section 5.5 / Figure 7): an
//! administrator redirects traffic from the n0→n1→n2 path to a new node
//! n3; the `sig` broadcast makes the compression layer re-materialize the
//! provenance trees, so packets before and after the change both remain
//! queryable — and their trees show the different paths taken.
//!
//! Run with: `cargo run --example route_update`

use dpc::netsim::topo;
use dpc::prelude::*;

fn main() {
    // Figure 7's topology: 0-1-2 line plus an alternative 0-3-2 path.
    let mut net = topo::line(3, Link::STUB_STUB);
    let n3 = {
        let id = net.add_node();
        net.add_link(NodeId(0), id, Link::STUB_STUB)
            .expect("fresh link");
        net.add_link(id, NodeId(2), Link::STUB_STUB)
            .expect("fresh link");
        id
    };

    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut rt = forwarding::runtime_builder(net)
        .recorder(AdvancedRecorder::new(4, keys))
        .build()
        .expect("the forwarding program builds");
    rt.install(forwarding::route(NodeId(0), NodeId(2), NodeId(1)))
        .expect("install");
    rt.install(forwarding::route(NodeId(1), NodeId(2), NodeId(2)))
        .expect("install");
    rt.install(forwarding::route(n3, NodeId(2), NodeId(2)))
        .expect("install");

    // Packet before the change.
    rt.inject(forwarding::packet(
        NodeId(0),
        NodeId(0),
        NodeId(2),
        "before",
    ))
    .expect("inject");
    rt.run().expect("run");

    // The administrator redirects: delete the old entry, insert the new
    // one. The insertion broadcasts `sig` (Section 5.5), clearing every
    // node's equivalence-keys table.
    println!("--- redirecting n0's route from n1 to {n3} ---\n");
    rt.delete_slow_at(forwarding::route(NodeId(0), NodeId(2), NodeId(1)), rt.now())
        .expect("schedule delete");
    rt.update_slow_at(forwarding::route(NodeId(0), NodeId(2), n3), rt.now())
        .expect("schedule insert");
    rt.run().expect("apply update");

    // Packet after the change: same equivalence keys (loc, dst), but the
    // cleared htequi forces a fresh tree.
    rt.inject(forwarding::packet(NodeId(0), NodeId(0), NodeId(2), "after"))
        .expect("inject");
    rt.run().expect("run");

    assert_eq!(rt.recorder().hmap_misses(), 0);
    let ctx = QueryCtx::from_runtime(&rt);
    for out in rt.outputs() {
        let res = query_advanced(&ctx, rt.recorder(), &out.tuple, &out.evid)
            .expect("both packets stay queryable");
        println!("provenance of {}:\n{}", out.tuple, res.tree);
    }
    println!(
        "the first tree routes via n1, the second via {n3} — the update\n\
         was captured without losing the earlier history."
    );
}
