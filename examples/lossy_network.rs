//! Failure injection: packets vanish on a lossy hop, yet the provenance
//! of every *delivered* packet stays complete and queryable — dropped
//! executions simply never derive their outputs, exactly like the
//! dropped packets themselves.
//!
//! Run with: `cargo run --example lossy_network`

use dpc::netsim::topo;
use dpc::prelude::*;

fn main() {
    let net = topo::line(4, Link::STUB_STUB);
    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut rt = forwarding::runtime_builder(net)
        .recorder(AdvancedRecorder::new(4, keys))
        .build()
        .expect("the forwarding program builds");
    forwarding::install_routes_for_pairs(&mut rt, &[(NodeId(0), NodeId(3))])
        .expect("line is connected");

    // Drop every 3rd message on the middle hop.
    rt.inject_loss(NodeId(1), NodeId(2), 3);

    for i in 0..9u64 {
        rt.inject(forwarding::packet(
            NodeId(0),
            NodeId(0),
            NodeId(3),
            format!("pkt-{i}"),
        ))
        .expect("inject");
    }
    rt.run().expect("run");

    println!(
        "sent 9 packets, {} delivered, {} dropped on the lossy n1->n2 hop\n",
        rt.outputs().len(),
        rt.dropped_messages()
    );

    let ctx = QueryCtx::from_runtime(&rt);
    for out in rt.outputs() {
        let res = query_advanced(&ctx, rt.recorder(), &out.tuple, &out.evid)
            .expect("delivered packets stay queryable");
        println!(
            "{} — provenance intact ({} rule executions)",
            out.tuple,
            res.tree.depth()
        );
    }
    println!(
        "\nno hmap misses: {} — loss never corrupts the compressed tables.",
        rt.recorder().hmap_misses()
    );
}
