//! Quickstart: the paper's running example end to end.
//!
//! Reproduces Figure 2's deployment (three nodes, routes toward the last),
//! sends the two packets of Figure 6, prints the compressed tables
//! (Table 3's shape) and queries both provenance trees back out.
//!
//! Run with: `cargo run --example quickstart`

use dpc::prelude::*;

fn main() {
    // --- Deploy -----------------------------------------------------------
    // The NDlog program of Figure 1, parsed from source and validated as a
    // DELP; static analysis identifies the equivalence keys (loc, dst).
    let delp = programs::packet_forwarding();
    let keys = equivalence_keys(&delp);
    println!("program:\n{}", delp.program());
    println!(
        "equivalence keys of `{}`: attributes {:?}\n",
        keys.rel(),
        keys.indices()
    );

    let net = dpc::netsim::topo::line(3, Link::STUB_STUB);
    let mut rt = forwarding::runtime_builder(net)
        .recorder(AdvancedRecorder::new(3, keys))
        .build()
        .expect("the forwarding program builds");
    rt.install(forwarding::route(NodeId(0), NodeId(2), NodeId(1)))
        .expect("install route at n0");
    rt.install(forwarding::route(NodeId(1), NodeId(2), NodeId(2)))
        .expect("install route at n1");

    // --- Execute (Figure 6) -----------------------------------------------
    for payload in ["data", "url"] {
        rt.inject(forwarding::packet(NodeId(0), NodeId(0), NodeId(2), payload))
            .expect("inject packet");
    }
    rt.run().expect("run to fixpoint");

    println!("outputs:");
    for out in rt.outputs() {
        println!("  {} at {} ({})", out.tuple, out.node, out.at);
    }

    // --- Inspect the compressed storage (Table 3's shape) ------------------
    println!("\nper-node provenance storage (bytes):");
    for i in 0..3u32 {
        let (prov, rule_exec) = rt.recorder().row_counts(NodeId(i));
        println!(
            "  n{i}: {:5} B  ({} prov rows, {} ruleExec rows)",
            rt.recorder().storage_at(NodeId(i)),
            prov,
            rule_exec
        );
    }
    println!(
        "note: one shared ruleExec chain, one prov row per packet — the\n\
         second packet reused the first packet's tree."
    );

    // --- Query both trees back (Section 5.6) -------------------------------
    let ctx = QueryCtx::from_runtime(&rt);
    for out in rt.outputs() {
        let res = query_advanced(&ctx, rt.recorder(), &out.tuple, &out.evid)
            .expect("every stored output is queryable");
        println!(
            "\nprovenance of {} (query latency {}, {} fetches):\n{}",
            out.tuple, res.latency, res.fetches, res.tree
        );
    }
}
