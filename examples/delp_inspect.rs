//! Inspect an NDlog program: parse it, validate the DELP restrictions
//! (Definition 1), classify its relations, run the static analysis and
//! print the equivalence keys plus the attribute dependency graph in
//! Graphviz dot format (Appendix C).
//!
//! Run with a file:    `cargo run --example delp_inspect -- my_program.ndlog`
//! Or on the built-in: `cargo run --example delp_inspect`

use dpc::ndlog::{analyze, equivalence_keys_with_graph, DepGraph, Mode};
use dpc::prelude::*;

fn main() {
    let (name, source) = match std::env::args().nth(1) {
        Some(path) => {
            let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            (path, src)
        }
        None => (
            "packet_forwarding (built-in)".to_string(),
            dpc::ndlog::programs::PACKET_FORWARDING.to_string(),
        ),
    };

    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    println!("== {name} ==\n{program}");

    let analysis = analyze(&program, Mode::Strict);
    let delp = match Delp::new(program) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("not a valid DELP: {e}");
            std::process::exit(1);
        }
    };
    println!("input event relation : {}", delp.input_event());
    println!(
        "slow-changing        : {}",
        delp.slow_rels()
            .iter()
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "output relations     : {}",
        delp.output_rels()
            .iter()
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );

    if analysis.diagnostics.is_empty() {
        println!("diagnostics          : none");
    } else {
        println!("diagnostics:");
        for d in &analysis.diagnostics {
            print!("{}", d.render(&source, &name));
        }
    }

    let graph = DepGraph::build(&delp);
    let keys = equivalence_keys_with_graph(&delp, &graph);
    println!(
        "equivalence keys     : {} attributes {:?}",
        keys.rel(),
        keys.indices()
    );
    println!(
        "\n// attribute dependency graph ({} nodes, {} edges) — pipe into `dot -Tpng`:",
        graph.node_count(),
        graph.edge_count()
    );
    print!(
        "{}",
        graph.to_dot(&format!("depgraph of {}", delp.input_event()))
    );
}
